"""Process-wide on/off switch for telemetry recording.

Kept in its own tiny module so both :mod:`repro.obs.trace` and
:mod:`repro.obs.probe` can consult it without import cycles.  Telemetry
is ON by default (the committed overhead benchmark holds the cost under
3%); ``REPRO_TELEMETRY=0`` in the environment or ``configure(False)``
turns every span into a shared no-op and every probe into a null sink.
"""

from __future__ import annotations

import os

__all__ = ["enabled", "configure"]

_enabled: bool = os.environ.get("REPRO_TELEMETRY", "1") not in ("0", "false", "off")


def enabled() -> bool:
    """Whether telemetry recording is currently on."""
    return _enabled


def configure(enabled: bool) -> bool:
    """Set the switch; returns the previous value."""
    global _enabled
    prev = _enabled
    _enabled = bool(enabled)
    return prev
