"""Configuration dataclasses for population, simulation, and experiments.

The paper runs one canonical scenario: the full city of Chicago — 2.9 M
persons and 1.2 M places — simulated for four weeks at one-hour resolution
on 256 MPI ranks.  This module captures that scenario as data so that the
same code paths run at laptop scale (the default) and can be dialed toward
the paper's scale for benchmark sweeps.

All sizes are derived from a single :class:`ScaleConfig` so experiments stay
internally consistent (places scale with persons at the paper's ratio of
roughly 1.2 M places : 2.9 M persons).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError

__all__ = [
    "HOURS_PER_DAY",
    "HOURS_PER_WEEK",
    "AGE_GROUPS",
    "age_group_of",
    "age_group_labels",
    "ScaleConfig",
    "ScheduleConfig",
    "DiseaseConfig",
    "SimulationConfig",
    "FaultConfig",
    "PAPER_SCALE",
]

HOURS_PER_DAY = 24
HOURS_PER_WEEK = 7 * HOURS_PER_DAY

#: Age group boundaries used in the paper's Figure 5, as (label, lo, hi)
#: with an inclusive range [lo, hi].
AGE_GROUPS: tuple[tuple[str, int, int], ...] = (
    ("0-14", 0, 14),
    ("15-18", 15, 18),
    ("19-44", 19, 44),
    ("45-64", 45, 64),
    ("65+", 65, 120),
)


def age_group_labels() -> list[str]:
    """Labels of the paper's Figure 5 age groups, in order."""
    return [label for label, _, _ in AGE_GROUPS]


def age_group_of(age: int) -> int:
    """Return the index into :data:`AGE_GROUPS` for an integer age."""
    for idx, (_, lo, hi) in enumerate(AGE_GROUPS):
        if lo <= age <= hi:
            return idx
    raise ConfigError(f"age {age} outside supported range 0..120")


@dataclass(frozen=True)
class ScaleConfig:
    """How big the synthetic world is.

    The defaults are laptop scale; :data:`PAPER_SCALE` holds the paper's
    numbers.  Derived place counts follow Chicago-like ratios: roughly one
    household per 2.6 persons, one school per ~1,450 persons, one workplace
    per ~18 persons, plus a pool of "other" gathering places (shops,
    restaurants, transit) at ~1 per 12 persons.
    """

    n_persons: int = 10_000
    seed: int = 42
    #: mean household size (Chicago ACS ≈ 2.5–2.6)
    mean_household_size: float = 2.6
    persons_per_school: float = 1450.0
    persons_per_workplace: float = 18.0
    persons_per_other_place: float = 12.0
    #: hard cap on persons assigned to one school classroom-hour; the paper
    #: attributes the flat 0-14 degree distribution to exactly this cap.
    school_capacity: int = 600
    classroom_size: int = 30
    #: city modeled as a unit square of this many km per side (for distance-
    #: based school/work assignment and spatial rank partitioning).
    city_km: float = 40.0

    def __post_init__(self) -> None:
        if self.n_persons <= 0:
            raise ConfigError(f"n_persons must be positive, got {self.n_persons}")
        if self.mean_household_size < 1.0:
            raise ConfigError("mean_household_size must be >= 1")
        if min(
            self.persons_per_school,
            self.persons_per_workplace,
            self.persons_per_other_place,
        ) <= 0:
            raise ConfigError("persons-per-place ratios must be positive")
        if self.school_capacity < self.classroom_size:
            raise ConfigError("school_capacity must be >= classroom_size")

    @property
    def n_households(self) -> int:
        return max(1, round(self.n_persons / self.mean_household_size))

    @property
    def n_schools(self) -> int:
        return max(1, round(self.n_persons / self.persons_per_school))

    @property
    def n_workplaces(self) -> int:
        return max(1, round(self.n_persons / self.persons_per_workplace))

    @property
    def n_other_places(self) -> int:
        return max(1, round(self.n_persons / self.persons_per_other_place))

    @property
    def n_places(self) -> int:
        return (
            self.n_households + self.n_schools + self.n_workplaces + self.n_other_places
        )

    def scaled(self, n_persons: int) -> "ScaleConfig":
        """Same ratios at a different population size."""
        return replace(self, n_persons=n_persons)


#: The paper's scenario: 2.9 M persons / ~1.2 M places.  Not meant to be run
#: on a laptop; used to compute the paper-scale projections reported in
#: EXPERIMENTS.md (e.g. log bytes per simulated week).
PAPER_SCALE = ScaleConfig(n_persons=2_900_000)


@dataclass(frozen=True)
class ScheduleConfig:
    """Parameters of daily activity schedule generation.

    Calibrated so a person changes activity about 5 times per day on
    average — the figure the paper uses to size its event log (Section III).
    """

    #: probability an adult is employed
    employment_rate: float = 0.72
    #: school start/end hours (children's weekday anchor)
    school_start: int = 8
    school_end: int = 15
    #: typical workday window; start jitters +-2h per person
    work_start: int = 9
    work_hours: int = 8
    #: per-day probability of an evening errand/leisure outing to an
    #: "other" place
    evening_out_prob: float = 0.65
    #: per-day probability of a lunchtime outing for workers
    lunch_out_prob: float = 0.45
    #: probability of a weekend outing block (weekends are less structured)
    weekend_out_prob: float = 0.8
    #: number of candidate "other" places a person rotates among
    favorite_places: int = 4

    def __post_init__(self) -> None:
        for name in (
            "employment_rate",
            "evening_out_prob",
            "lunch_out_prob",
            "weekend_out_prob",
        ):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ConfigError(f"{name} must be a probability, got {v}")
        if not 0 <= self.school_start < self.school_end <= 24:
            raise ConfigError("school hours must satisfy 0 <= start < end <= 24")
        if not 0 <= self.work_start <= 23 or not 1 <= self.work_hours <= 16:
            raise ConfigError("invalid work window")
        if self.favorite_places < 1:
            raise ConfigError("favorite_places must be >= 1")


@dataclass(frozen=True)
class DiseaseConfig:
    """SEIR layer parameters (the chiSIM heritage model).

    Transmission is per collocated infectious-susceptible pair per hour.
    """

    transmissibility: float = 0.002
    incubation_days: float = 2.0
    infectious_days: float = 5.0
    initial_infected: int = 5

    def __post_init__(self) -> None:
        if not 0.0 <= self.transmissibility <= 1.0:
            raise ConfigError("transmissibility must be in [0, 1]")
        if self.incubation_days <= 0 or self.infectious_days <= 0:
            raise ConfigError("disease durations must be positive")
        if self.initial_infected < 0:
            raise ConfigError("initial_infected must be >= 0")


@dataclass(frozen=True)
class FaultConfig:
    """Fault-tolerance knobs for multi-hour synthesis runs.

    Batch jobs on the Blues cluster die for transient reasons — a worker
    OOM-killed, an NFS hiccup, one truncated rank file out of hundreds.
    This config bundles the retry, quarantine, and checkpoint policies the
    pipeline uses to survive them.
    """

    #: total tries per worker task (1 disables retries)
    max_attempts: int = 3
    #: seconds before the first retry (0 disables sleeping)
    backoff_base: float = 0.05
    #: exponential backoff multiplier per additional attempt
    backoff_factor: float = 2.0
    #: ceiling on the un-jittered retry delay, seconds
    backoff_max: float = 5.0
    #: deterministic jitter fraction around each delay
    jitter: float = 0.1
    #: jitter stream selector
    seed: int = 0
    #: True restores raise-on-damaged-file behavior (no quarantine)
    strict: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("jitter must be in [0, 1]")

    def retry_policy(self):
        """The equivalent :class:`~repro.distrib.taskpool.RetryPolicy`."""
        from .distrib.taskpool import RetryPolicy

        return RetryPolicy(
            max_attempts=self.max_attempts,
            base_delay=self.backoff_base,
            backoff=self.backoff_factor,
            max_delay=self.backoff_max,
            jitter=self.jitter,
            seed=self.seed,
        )


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level run configuration combining all substrates."""

    scale: ScaleConfig = field(default_factory=ScaleConfig)
    schedule: ScheduleConfig = field(default_factory=ScheduleConfig)
    disease: DiseaseConfig | None = None
    #: simulated duration in hours (paper: four weeks)
    duration_hours: int = HOURS_PER_WEEK
    #: number of ranks for distributed runs (paper: 256)
    n_ranks: int = 1
    #: event-log write cache, in records (paper nominal: 10,000)
    log_cache_records: int = 10_000
    #: event-log durability: "none" (paper behavior — a killed rank loses
    #: up to a cache of records), "fsync" (flushed chunks are durable), or
    #: "wal" (journaled — a hard kill loses zero acknowledged records)
    log_durability: str = "none"
    #: take a resumable simulation snapshot every N simulated hours
    #: (None disables checkpointing)
    checkpoint_every_hours: int | None = None
    #: seconds a rank may go without reaching a collective before the
    #: cluster declares it dead (None disables heartbeat detection)
    heartbeat_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.duration_hours <= 0:
            raise ConfigError("duration_hours must be positive")
        if self.n_ranks < 1:
            raise ConfigError("n_ranks must be >= 1")
        if self.log_cache_records < 1:
            raise ConfigError("log_cache_records must be >= 1")
        if self.log_durability not in ("none", "fsync", "wal"):
            raise ConfigError(
                f"log_durability must be 'none', 'fsync', or 'wal', "
                f"got {self.log_durability!r}"
            )
        if self.checkpoint_every_hours is not None and self.checkpoint_every_hours < 1:
            raise ConfigError("checkpoint_every_hours must be >= 1")
        if self.heartbeat_timeout is not None and self.heartbeat_timeout <= 0:
            raise ConfigError("heartbeat_timeout must be positive")
