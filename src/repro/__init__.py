"""repro — Endogenous social networks from large-scale agent-based models.

A full-stack Python reproduction of Tatara, Collier, Ozik & Macal,
*Endogenous Social Networks from Large-Scale Agent-Based Models* (IPPS
2017): a chiSIM-style urban agent-based model, parallel event-based
activity logging, and the parallel collocation-network synthesis and
analysis pipeline.

Quickstart
----------
>>> import repro
>>> pop = repro.generate_population(repro.ScaleConfig(n_persons=2000))
>>> sim = repro.Simulation(pop, repro.SimulationConfig(
...     scale=pop.scale, duration_hours=repro.HOURS_PER_WEEK))
>>> result = sim.run_fast()
>>> net, report = repro.synthesize_network(
...     result.records, pop.n_persons, 0, repro.HOURS_PER_WEEK)
>>> net.n_edges > 0
True

Subpackages
-----------
- :mod:`repro.synthpop` — synthetic population (persons, places, schedules)
- :mod:`repro.sim` — the agent-based model (serial engine, SEIR layer)
- :mod:`repro.distrib` — rank-based distributed runtime and partitioning
- :mod:`repro.evlog` — chunked binary event logging (EVL format)
- :mod:`repro.core` — collocation network synthesis (the paper's method)
- :mod:`repro.analysis` — degree/clustering/ego/group network analysis
- :mod:`repro.viz` — ForceAtlas2 layout, GEXF/GraphML export, ASCII plots
"""

from .config import (
    AGE_GROUPS,
    HOURS_PER_DAY,
    HOURS_PER_WEEK,
    PAPER_SCALE,
    DiseaseConfig,
    FaultConfig,
    ScaleConfig,
    ScheduleConfig,
    SimulationConfig,
    age_group_labels,
)
from .errors import ReproError
from .synthpop import (
    SyntheticPopulation,
    generate_population,
    load_population,
    save_population,
)
from .sim import Simulation, SimulationResult, DiseaseModel, DiseaseState
from .distrib import (
    DistributedSimulation,
    PlacePartition,
    RetryPolicy,
    PoolReport,
    SimCluster,
    estimate_migration,
    make_pool,
    movement_matrix,
    random_partition,
    refine_partition,
    spatial_partition,
)
from .evlog import CachedLogWriter, LogReader, LogSet
from .core import (
    CollocationNetwork,
    SynthesisPlan,
    SynthesisReport,
    TileCache,
    query_window,
    synthesize_from_logs,
    synthesize_network,
)
from .analysis import (
    age_group_degree_distributions,
    clustering_histogram,
    compare_fits,
    degree_distribution,
    ego_network,
    local_clustering,
    summarize,
)
from .viz import forceatlas2_layout, write_gexf, write_graphml
from .service import (
    NetworkQueryService,
    ServiceClient,
    ServiceConfig,
    SyncServiceClient,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # config
    "AGE_GROUPS",
    "HOURS_PER_DAY",
    "HOURS_PER_WEEK",
    "PAPER_SCALE",
    "DiseaseConfig",
    "FaultConfig",
    "ScaleConfig",
    "ScheduleConfig",
    "SimulationConfig",
    "age_group_labels",
    "ReproError",
    # population
    "SyntheticPopulation",
    "generate_population",
    "load_population",
    "save_population",
    # simulation
    "Simulation",
    "SimulationResult",
    "DiseaseModel",
    "DiseaseState",
    # distributed
    "DistributedSimulation",
    "PlacePartition",
    "RetryPolicy",
    "PoolReport",
    "SimCluster",
    "estimate_migration",
    "make_pool",
    "movement_matrix",
    "random_partition",
    "refine_partition",
    "spatial_partition",
    # logging
    "CachedLogWriter",
    "LogReader",
    "LogSet",
    # synthesis
    "CollocationNetwork",
    "SynthesisPlan",
    "SynthesisReport",
    "TileCache",
    "query_window",
    "synthesize_from_logs",
    "synthesize_network",
    # analysis
    "age_group_degree_distributions",
    "clustering_histogram",
    "compare_fits",
    "degree_distribution",
    "ego_network",
    "local_clustering",
    "summarize",
    # viz
    "forceatlas2_layout",
    "write_gexf",
    "write_graphml",
    # service
    "NetworkQueryService",
    "ServiceClient",
    "ServiceConfig",
    "SyncServiceClient",
]
