"""Interval-overlap collocation kernel.

The legacy kernel (:mod:`repro.core.colloc`) materializes one presence
nonzero per *person-hour*: a record ``[start, stop)`` costs ``stop-start``
matrix entries, so the same log records cost ~28x more to process over a
4-week window than over a 1-day window.  This module computes pairwise
collocated hours directly from the ``[start, stop)`` spells instead:

* per place, the union of all record start/stop times defines **elementary
  segments** — maximal intervals during which the set of present persons
  cannot change.  A record spans whole segments, so presence becomes a
  binary ``persons x segments`` matrix ``Y`` whose column count is bounded
  by ``2 x records`` (and by the window length), never by the window alone;
* pairwise collocated hours are ``A = (Y . diag(seg_len)) . Y^T`` — the
  per-hour matrix product of the legacy kernel with all hours during which
  nothing changes coalesced into a single weighted column.  The result is
  **bit-for-bit identical** to the legacy kernel's ``x . x^T`` because both
  count the same integer person-hours.

Complexity drops from O(person-hours) to O(records + pair overlaps),
independent of window length.

The unit of work is an :class:`IntervalPack` covering *many* places at
once: columns of all places live side by side in one sparse matrix
(cross-place products are structurally zero, so one matmul equals the sum
of per-place products).  This removes the per-place Python/scipy call
overhead that dominates the legacy kernel at realistic place counts —
building, balancing, and multiplying are all vectorized across places.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from ..errors import SynthesisError
from ..evlog.schema import LOG_DTYPE, LogRecordArray
from .adjacency import accumulate_adjacency, empty_adjacency
from .colloc import _expand_intervals
from .kernels import resolve_backend
from .kernels.workspace import kernel_stage

__all__ = [
    "IntervalPack",
    "build_interval_pack",
    "build_interval_pack_columns",
    "interval_pack_for_place",
    "select_pack_places",
    "merge_packs",
    "sum_pack_adjacency",
]

_TIME_MASK = np.uint64(0xFFFFFFFF)
_PLACE_SHIFT = np.uint64(32)


@dataclass
class IntervalPack:
    """Presence over elementary segments for a set of places.

    Attributes
    ----------
    places:
        sorted unique place ids covered by this pack.
    place_work:
        per place, the estimated pairwise-product work
        ``sum(col_count^2)`` over its segments — the LPT balancing weight.
    place_hours:
        per place, total person-hours of presence (report bookkeeping;
        equals the legacy kernel's presence nnz for the place).
    col_place, col_start, col_weight:
        per matrix column: owning place id, absolute segment start hour,
        and segment length in hours.  Columns are ordered by
        ``(place, start)`` and each place's segments tile its boundary
        span contiguously.
    persons:
        sorted unique global person ids with any presence (row map).
    matrix:
        binary CSR ``(len(persons), n_columns)``; entry ``(i, c)`` set
        when ``persons[i]`` was present during segment ``c``.
    t0, t1:
        the absolute-time slice this pack covers.
    """

    places: np.ndarray
    place_work: np.ndarray
    place_hours: np.ndarray
    col_place: np.ndarray
    col_start: np.ndarray
    col_weight: np.ndarray
    persons: np.ndarray
    matrix: sp.csr_matrix
    t0: int
    t1: int

    @property
    def n_places(self) -> int:
        return len(self.places)

    @property
    def n_persons(self) -> int:
        return len(self.persons)

    @property
    def nnz(self) -> int:
        """Presence entries (person-segments), the pack's storage size."""
        return int(self.matrix.nnz)

    @property
    def person_hours(self) -> int:
        """Total person-hours of presence (= legacy presence nnz)."""
        return int(self.place_hours.sum())

    @property
    def work(self) -> int:
        """Estimated pairwise-product work over all places."""
        return int(self.place_work.sum())


def _boundary_space(
    ukeys: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Decode a sorted unique ``(place << 32 | time)`` boundary-key array.

    Returns ``(place_of_boundary, time_of_boundary, rank_of_boundary,
    keep)`` where ``rank`` numbers each boundary's place (0-based, in
    sorted place order) and ``keep`` marks boundaries that open a segment
    (every boundary except each place's last).  The column index of a kept
    boundary ``b`` is ``b - rank[b]``: the boundaries before it contain
    exactly ``rank[b]`` closing (last-of-place) boundaries.
    """
    upl = (ukeys >> _PLACE_SHIFT).astype(np.int64)
    utime = (ukeys & _TIME_MASK).astype(np.int64)
    new_place = np.empty(len(ukeys), dtype=bool)
    new_place[0] = True
    np.not_equal(upl[1:], upl[:-1], out=new_place[1:])
    rank = np.cumsum(new_place) - 1
    keep = np.empty(len(ukeys), dtype=bool)
    keep[:-1] = new_place[1:]
    keep[-1] = True
    np.logical_not(keep, out=keep)
    return upl, utime, rank, keep


def _finish_pack(
    ukeys: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    persons: np.ndarray,
    t0: int,
    t1: int,
) -> IntervalPack:
    """Assemble a pack from boundary keys and (possibly duplicated)
    presence entries in local row / packed column coordinates."""
    upl, utime, rank, keep = _boundary_space(ukeys)
    place_ids = upl[np.flatnonzero(np.concatenate(([True], upl[1:] != upl[:-1])))]
    n_cols = len(ukeys) - len(place_ids)
    x = sp.coo_matrix(
        (np.ones(len(rows), dtype=np.uint32), (rows, cols)),
        shape=(len(persons), n_cols),
    ).tocsr()
    # a person logged twice for the same (place, segment) still counts once
    x.data[:] = 1
    col_place = upl[keep]
    col_start = utime[keep]
    col_weight = (utime[1:] - utime[:-1])[keep[:-1]]
    col_pidx = rank[keep]
    counts = np.bincount(x.indices, minlength=n_cols).astype(np.int64)
    first_col = np.flatnonzero(
        np.concatenate(([True], col_pidx[1:] != col_pidx[:-1]))
    )
    place_work = np.add.reduceat(counts * counts, first_col)
    place_hours = np.add.reduceat(counts * col_weight, first_col)
    return IntervalPack(
        places=place_ids,
        place_work=place_work,
        place_hours=place_hours,
        col_place=col_place,
        col_start=col_start,
        col_weight=col_weight,
        persons=persons,
        matrix=x,
        t0=int(t0),
        t1=int(t1),
    )


def build_interval_pack(
    records: LogRecordArray, t0: int, t1: int, backend: str | None = None
) -> IntervalPack:
    """Build the interval-overlap presence pack for a set of records.

    Records must be clipped to ``[t0, t1)`` and may cover any number of
    places, in any order.  Fully vectorized: one boundary sort, one
    segment expansion, one COO->CSR conversion for all places together.
    ``backend`` selects the kernel backend (see
    :mod:`repro.core.kernels`); every backend builds a bit-identical
    pack.
    """
    records = np.asarray(records, dtype=LOG_DTYPE)
    if len(records) == 0:
        raise SynthesisError("cannot build an interval pack from no records")
    return build_interval_pack_columns(
        records["start"].astype(np.int64),
        records["stop"].astype(np.int64),
        records["person"].astype(np.int64),
        records["place"].astype(np.int64),
        t0,
        t1,
        backend=backend,
    )


def build_interval_pack_columns(
    starts: np.ndarray,
    stops: np.ndarray,
    person: np.ndarray,
    place: np.ndarray,
    t0: int,
    t1: int,
    backend: str | None = None,
) -> IntervalPack:
    """Columnar twin of :func:`build_interval_pack`.

    Takes the four int64 record columns directly — the zero-copy
    dispatch path decodes mmap'd chunks straight into columns (no
    intermediate struct-record copies) and lands here.
    """
    if len(starts) == 0:
        raise SynthesisError("cannot build an interval pack from no records")
    if starts.min() < t0 or stops.max() > t1:
        raise SynthesisError("records extend outside the slice; clip first")
    with kernel_stage("pack_build"):
        if resolve_backend(backend) == "masked":
            from .kernels.masked import build_pack_arrays

            fields = build_pack_arrays(starts, stops, person, place, t0, t1)
            if fields is not None:
                return IntervalPack(t0=int(t0), t1=int(t1), **fields)
        placeu = place.astype(np.uint64)
        key_start = (placeu << _PLACE_SHIFT) | starts.astype(np.uint64)
        key_stop = (placeu << _PLACE_SHIFT) | stops.astype(np.uint64)
        ukeys, inv = np.unique(
            np.concatenate((key_start, key_stop)), return_inverse=True
        )
        inv = inv.reshape(-1)  # numpy >= 2.1 preserves input shape
        lo, hi = inv[: len(starts)], inv[len(starts) :]
        upl = (ukeys >> _PLACE_SHIFT).astype(np.int64)
        rank = np.cumsum(np.concatenate(([True], upl[1:] != upl[:-1]))) - 1
        # a record's boundaries belong to its own place: rank[lo] == rank[hi]
        rec_rows, cols = _expand_intervals(lo - rank[lo], hi - rank[hi])
        persons, local = np.unique(person, return_inverse=True)
        return _finish_pack(ukeys, local[rec_rows], cols, persons, t0, t1)


def interval_pack_for_place(
    place: int, records: LogRecordArray, t0: int, t1: int
) -> IntervalPack:
    """Single-place pack — the interval twin of
    :func:`~repro.core.colloc.collocation_matrix_for_place`."""
    records = np.asarray(records, dtype=LOG_DTYPE)
    if len(records) == 0:
        raise SynthesisError(f"no records for place {place}")
    if (records["place"] != place).any():
        raise SynthesisError(f"records contain foreign places (expected {place})")
    return build_interval_pack(records, t0, t1)


def select_pack_places(
    pack: IntervalPack, places: np.ndarray
) -> IntervalPack | None:
    """Restrict a pack to a subset of its places (columns + rows compacted).

    Returns ``None`` when the selection is empty.  Whole places are kept
    or dropped, so every surviving place's segment structure is unchanged.
    """
    places = np.asarray(places, dtype=np.int64)
    pmask = np.isin(pack.places, places)
    if not pmask.any():
        return None
    if pmask.all():
        return pack
    colmask = np.isin(pack.col_place, places)
    colmap = np.cumsum(colmask) - 1
    coo = pack.matrix.tocoo()
    ekeep = colmask[coo.col]
    used_rows, local = np.unique(coo.row[ekeep], return_inverse=True)
    x = sp.coo_matrix(
        (
            np.ones(int(ekeep.sum()), dtype=np.uint32),
            (local, colmap[coo.col[ekeep]]),
        ),
        shape=(len(used_rows), int(colmask.sum())),
    ).tocsr()
    return IntervalPack(
        places=pack.places[pmask],
        place_work=pack.place_work[pmask],
        place_hours=pack.place_hours[pmask],
        col_place=pack.col_place[colmask],
        col_start=pack.col_start[colmask],
        col_weight=pack.col_weight[colmask],
        persons=pack.persons[used_rows],
        matrix=x,
        t0=pack.t0,
        t1=pack.t1,
    )


def _packs_place_disjoint(packs: Sequence[IntervalPack]) -> bool:
    """True when packs are place-ordered with pairwise-disjoint place sets.

    This is the steady-state shape from the descriptor path: per-rank sim
    logs have place locality, so per-file packs almost never share a
    place.  Places are sorted within each pack, so ordered-and-disjoint
    reduces to ``prev last < next first``.
    """
    prev_last = -1
    for p in packs:
        if p.n_places == 0 or int(p.places[0]) <= prev_last:
            return False
        prev_last = int(p.places[-1])
    return True


def _merge_packs_concat(packs: Sequence[IntervalPack]) -> IntervalPack:
    """Fast path: place-disjoint ordered packs merge by pure concatenation.

    No place's boundary set gains new members, so every column, segment
    weight, and per-place work/hours total survives verbatim; only rows
    are remapped into the union person space and columns shifted by the
    preceding packs' widths.  Bit-identical to :func:`_merge_packs_reunion`
    on these inputs (canonical CSR of the same presence pattern).
    """
    t0, t1 = packs[0].t0, packs[0].t1
    persons = np.unique(np.concatenate([p.persons for p in packs]))
    rows_parts, cols_parts = [], []
    offset = 0
    for p in packs:
        coo = p.matrix.tocoo()
        rows_parts.append(np.searchsorted(persons, p.persons)[coo.row])
        cols_parts.append(coo.col.astype(np.int64) + offset)
        offset += p.matrix.shape[1]
    x = sp.coo_matrix(
        (
            np.ones(sum(len(r) for r in rows_parts), dtype=np.uint32),
            (np.concatenate(rows_parts), np.concatenate(cols_parts)),
        ),
        shape=(len(persons), offset),
    ).tocsr()
    x.data[:] = 1
    return IntervalPack(
        places=np.concatenate([p.places for p in packs]),
        place_work=np.concatenate([p.place_work for p in packs]),
        place_hours=np.concatenate([p.place_hours for p in packs]),
        col_place=np.concatenate([p.col_place for p in packs]),
        col_start=np.concatenate([p.col_start for p in packs]),
        col_weight=np.concatenate([p.col_weight for p in packs]),
        persons=persons,
        matrix=x,
        t0=t0,
        t1=t1,
    )


def merge_packs(packs: Sequence[IntervalPack]) -> IntervalPack:
    """Union-merge packs whose place sets may overlap.

    For a place present in several packs (its records were split across
    zero-copy dispatch tasks), the merged segment boundaries are the union
    of the source boundaries and presence is the per-(person, segment)
    union — bit-for-bit what a single pack built from the concatenated
    records would contain.

    When the packs are already place-ordered and place-disjoint (the
    common descriptor-path shape) the merge skips the boundary re-union
    and segment re-expansion entirely and concatenates.
    """
    if not packs:
        raise SynthesisError("cannot merge zero packs")
    if len(packs) == 1:
        return packs[0]
    t0, t1 = packs[0].t0, packs[0].t1
    if any(p.t0 != t0 or p.t1 != t1 for p in packs):
        raise SynthesisError("cannot merge packs over different windows")
    if _packs_place_disjoint(packs):
        return _merge_packs_concat(packs)
    return _merge_packs_reunion(packs)


def _merge_packs_reunion(packs: Sequence[IntervalPack]) -> IntervalPack:
    """General path: re-union boundaries and re-expand every segment."""
    t0, t1 = packs[0].t0, packs[0].t1
    persons = np.unique(np.concatenate([p.persons for p in packs]))
    key_parts = []
    for p in packs:
        pl = p.col_place.astype(np.uint64) << _PLACE_SHIFT
        key_parts.append(pl | p.col_start.astype(np.uint64))
        key_parts.append(pl | (p.col_start + p.col_weight).astype(np.uint64))
    ukeys, inv = np.unique(np.concatenate(key_parts), return_inverse=True)
    inv = inv.reshape(-1)
    upl = (ukeys >> _PLACE_SHIFT).astype(np.int64)
    rank = np.cumsum(np.concatenate(([True], upl[1:] != upl[:-1]))) - 1
    rows_parts, cols_parts = [], []
    offset = 0
    for p in packs:
        n = len(p.col_place)
        lo = inv[offset : offset + n]
        hi = inv[offset + n : offset + 2 * n]
        offset += 2 * n
        col_lo = lo - rank[lo]
        col_hi = hi - rank[hi]
        coo = p.matrix.tocoo()
        rec_rows, cols = _expand_intervals(col_lo[coo.col], col_hi[coo.col])
        rows_parts.append(
            np.searchsorted(persons, p.persons)[coo.row[rec_rows]]
        )
        cols_parts.append(cols)
    return _finish_pack(
        ukeys,
        np.concatenate(rows_parts),
        np.concatenate(cols_parts),
        persons,
        t0,
        t1,
    )


def sum_pack_adjacency(
    packs: Sequence[IntervalPack | None],
    n_persons: int,
    backend: str | None = None,
) -> sp.csr_matrix:
    """A worker's stage-4 job: pairwise collocated hours over its share.

    One weighted product ``(Y . diag(w)) . Y^T`` per *pack* — a pack's
    places share one column space, so this replaces the legacy per-place
    matmul loop with a handful of large products (cross-place blocks are
    structurally zero and cost nothing).  Output is the same strict
    upper-triangular CSR :func:`~repro.core.adjacency.sum_adjacency_list`
    produces from the legacy matrices.

    Under the ``masked`` backend the product runs in the compiled
    masked-triangular SpGEMM (upper pairs only, shared pooled output
    triples); the scipy product below stays the bit-identical reference.
    """
    live = [p for p in packs if p is not None and p.matrix.nnz]
    if not live:
        return empty_adjacency(n_persons)
    for pack in live:
        if pack.persons.size and int(pack.persons.max()) >= n_persons:
            raise SynthesisError("pack references person outside population")
    if resolve_backend(backend) == "masked":
        from .kernels.masked import sum_shares_adjacency

        out = sum_shares_adjacency(
            [
                (
                    p.matrix,
                    p.col_weight.astype(np.int64, copy=False),
                    p.persons.astype(np.int64, copy=False),
                )
                for p in live
            ],
            n_persons,
        )
        if out is not None:
            return out
    parts = []
    with kernel_stage("spgemm"):
        for pack in live:
            x = pack.matrix
            xw = x.copy()
            xw.data = pack.col_weight[x.indices].astype(np.int64)
            local = (xw @ x.T).tocoo()
            keep = local.row < local.col  # persons sorted: local == global
            data = local.data[keep].astype(np.int64)
            if pack.n_persons == n_persons:
                # identity person map: the pack covers the whole
                # population, so local coordinates already are global
                rows, cols = local.row[keep], local.col[keep]
            else:
                g = pack.persons.astype(np.int64, copy=False)
                rows, cols = g[local.row[keep]], g[local.col[keep]]
            parts.append(
                sp.coo_matrix(
                    (data, (rows, cols)), shape=(n_persons, n_persons)
                )
            )
    with kernel_stage("accumulate"):
        return accumulate_adjacency(parts, n_persons)
