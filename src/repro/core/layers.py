"""Place-kind network layers.

The paper's conclusion: "it is likely that an accurate characterization of
the real population social network will require that synthetically
generated networks also match the vertex degree distributions for
population sub-groups such as age or **location type, e.g., work or
school**."

A *layer* is the collocation network restricted to contacts made at one
kind of place (home / school / workplace / other venue).  Layers decompose
the full network exactly — the weighted adjacency is the sum of the four
layer adjacencies, because every log record carries its place and every
place has exactly one kind — which the tests assert.
"""

from __future__ import annotations

import numpy as np

from ..errors import SynthesisError
from ..evlog.schema import LOG_DTYPE, LogRecordArray
from ..distrib.taskpool import WorkerPool
from ..synthpop.places import PlaceKind, PlaceTable
from .network import CollocationNetwork
from .pipeline import synthesize_network

__all__ = ["synthesize_layers", "layer_records"]


def layer_records(
    records: LogRecordArray, places: PlaceTable, kind: PlaceKind
) -> LogRecordArray:
    """Records whose place is of the given kind."""
    records = np.asarray(records, dtype=LOG_DTYPE)
    if records.size and int(records["place"].max()) >= len(places):
        raise SynthesisError("records reference places outside the table")
    mask = places.kind[records["place"].astype(np.int64)] == int(kind)
    return records[mask]


def synthesize_layers(
    records: LogRecordArray,
    places: PlaceTable,
    n_persons: int,
    t0: int,
    t1: int,
    pool: WorkerPool | None = None,
    kernel: str = "intervals",
) -> dict[str, CollocationNetwork]:
    """One collocation network per place kind, over the same window.

    Returns ``{"home": ..., "school": ..., "workplace": ..., "other": ...}``.
    Kinds with no in-window records yield empty networks of the right
    shape, so layer arithmetic always works.
    """
    layers: dict[str, CollocationNetwork] = {}
    for kind in PlaceKind:
        subset = layer_records(records, places, kind)
        window = subset[(subset["start"] < t1) & (subset["stop"] > t0)]
        if len(window) == 0:
            from .adjacency import empty_adjacency

            layers[kind.name.lower()] = CollocationNetwork(
                empty_adjacency(n_persons), t0=t0, t1=t1
            )
            continue
        net, _ = synthesize_network(
            subset, n_persons, t0, t1, pool=pool, kernel=kernel
        )
        layers[kind.name.lower()] = net
    return layers
