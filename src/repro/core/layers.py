"""Place-kind network layers.

The paper's conclusion: "it is likely that an accurate characterization of
the real population social network will require that synthetically
generated networks also match the vertex degree distributions for
population sub-groups such as age or **location type, e.g., work or
school**."

A *layer* is the collocation network restricted to contacts made at one
kind of place (home / school / workplace / other venue).  Layers decompose
the full network exactly — the weighted adjacency is the sum of the four
layer adjacencies, because every log record carries its place and every
place has exactly one kind — which the tests assert.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import SynthesisError
from ..evlog.multifile import LogSet
from ..evlog.schema import LOG_DTYPE, LogRecordArray
from ..distrib.taskpool import WorkerPool
from ..obs import start_span
from ..synthpop.places import PlaceKind, PlaceTable
from .network import CollocationNetwork
from .pipeline import synthesize_network

__all__ = [
    "LAYER_KINDS",
    "synthesize_layers",
    "synthesize_layers_from_logs",
    "layer_caches",
    "layer_records",
]

#: canonical lower-case layer names, in :class:`PlaceKind` order — the
#: vocabulary shared by layer synthesis, the tile caches, and the
#: network-query service's ``layer`` op
LAYER_KINDS: tuple[str, ...] = tuple(kind.name.lower() for kind in PlaceKind)


def layer_records(
    records: LogRecordArray, places: PlaceTable, kind: PlaceKind
) -> LogRecordArray:
    """Records whose place is of the given kind."""
    records = np.asarray(records, dtype=LOG_DTYPE)
    if records.size and int(records["place"].max()) >= len(places):
        raise SynthesisError("records reference places outside the table")
    mask = places.kind[records["place"].astype(np.int64)] == int(kind)
    return records[mask]


def synthesize_layers(
    records: LogRecordArray,
    places: PlaceTable,
    n_persons: int,
    t0: int,
    t1: int,
    pool: WorkerPool | None = None,
    kernel: str = "intervals",
    backend: str | None = None,
) -> dict[str, CollocationNetwork]:
    """One collocation network per place kind, over the same window.

    Returns ``{"home": ..., "school": ..., "workplace": ..., "other": ...}``.
    Kinds with no in-window records yield empty networks of the right
    shape, so layer arithmetic always works.
    """
    layers: dict[str, CollocationNetwork] = {}
    for kind in PlaceKind:
        with start_span("layer", attrs={"kind": kind.name.lower()}):
            layers[kind.name.lower()] = _layer_network(
                records, places, kind, n_persons, t0, t1, pool, kernel, backend
            )
    return layers


def _layer_network(
    records, places, kind, n_persons, t0, t1, pool, kernel, backend
) -> CollocationNetwork:
    subset = layer_records(records, places, kind)
    window = subset[(subset["start"] < t1) & (subset["stop"] > t0)]
    if len(window) == 0:
        from .adjacency import empty_adjacency

        return CollocationNetwork(empty_adjacency(n_persons), t0=t0, t1=t1)
    net, _ = synthesize_network(
        subset, n_persons, t0, t1, pool=pool, kernel=kernel, backend=backend
    )
    return net


def layer_caches(
    log_dir: "str | Path | LogSet",
    places: PlaceTable,
    n_persons: int,
    tile_hours: int = 24,
    budget_nnz: int | None = None,
    cache_dir: "str | Path | None" = None,
    pool: WorkerPool | None = None,
    dispatch: str = "value",
    strict: bool = False,
    kinds: "tuple[str, ...] | list[str] | None" = None,
    backend: str | None = None,
    plan=None,
) -> dict:
    """One :class:`~repro.core.tilecache.TileCache` per place kind.

    Each cache restricts tile construction to records at places of its
    kind (via the cache's ``place_mask``), so repeated layer queries over
    sliding windows reuse per-kind tiles instead of re-filtering records.
    With ``cache_dir``, each kind persists into its own subdirectory.
    ``budget_nnz`` applies per kind.  Close every cache when done.

    ``kinds`` restricts construction to a subset of :data:`LAYER_KINDS`
    (the query service builds layer caches one kind at a time, on first
    request); the default builds all four.
    """
    from .tilecache import TileCache

    if plan is not None:
        # the plan is authoritative for cache sizing + synthesis knobs
        tile_hours = plan.tile_hours
        budget_nnz = plan.cache_budget_nnz
        dispatch = plan.dispatch
        strict = plan.strict
        backend = plan.backend
        if cache_dir is None:
            cache_dir = plan.cache_dir
    if kinds is None:
        kinds = LAYER_KINDS
    unknown = [k for k in kinds if k not in LAYER_KINDS]
    if unknown:
        raise SynthesisError(
            f"unknown layer kind(s) {unknown}; expected a subset of "
            f"{list(LAYER_KINDS)}"
        )
    caches: dict[str, TileCache] = {}
    for name in kinds:
        kind = PlaceKind[name.upper()]
        caches[name] = TileCache(
            log_dir,
            n_persons,
            tile_hours=tile_hours,
            budget_nnz=budget_nnz,
            cache_dir=Path(cache_dir) / name if cache_dir is not None else None,
            pool=pool,
            dispatch=dispatch,
            strict=strict,
            place_mask=places.kind == int(kind),
            backend=backend,
        )
    return caches


def synthesize_layers_from_logs(
    log_dir: "str | Path | LogSet",
    places: PlaceTable,
    n_persons: int,
    t0: int,
    t1: int,
    caches: dict | None = None,
    **cache_kwargs,
) -> tuple[dict[str, CollocationNetwork], dict]:
    """One collocation network per place kind, served from per-kind tile
    caches.

    Returns ``(layers, caches)``; pass ``caches`` back for subsequent
    windows so the per-kind tiles stay warm, and close them when done.
    Layer decomposition stays exact: the four layer adjacencies sum to the
    full-network adjacency over the same window.
    """
    if caches is None:
        caches = layer_caches(log_dir, places, n_persons, **cache_kwargs)
    elif cache_kwargs:
        raise SynthesisError(
            "pass cache construction arguments or existing caches, not both"
        )
    layers = {}
    for name, cache in caches.items():
        with start_span("layer", attrs={"kind": name, "cache": True}):
            layers[name] = cache.query_window(t0, t1)
    return layers, caches
