"""End-to-end synthesis orchestration (paper Section IV.A).

The stages map one-to-one onto the paper's:

1. *data loading* — read per-rank EVL files (root);
2. *collocation matrices creation* — slice the window, group records by
   place, map matrix construction over a worker pool;
3. *collocation matrix list partitioning* — LPT by nnz across workers;
4. *adjacency matrices creation* — each worker computes and sums its
   ``x·xᵀ`` share; the root reduces to one upper-triangular matrix.

Log files are processed in independent batches ("batches of 16 files at a
time"); batch networks are summed.  Batch independence relies on the
distributed model's place ownership: every record for a place lives in
exactly one rank's file, so a place's collocation matrix is never split
across batches.  ``validate_place_locality`` makes that precondition
checkable for logs of unknown provenance.

Fault tolerance (this layer)
----------------------------
Batch independence is also the recovery unit.  After every completed batch
the pipeline can persist a checkpoint — the partial adjacency sum plus a
manifest recording the configuration digest and how many batches are done —
written atomically so a run killed mid-batch resumes from the last
completed batch and produces a bit-identical network.  Damaged log files
(truncated or failing CRC) are quarantined instead of killing the run
(``strict=True`` restores the raise-on-damage behavior), and worker-task
retries performed by the pool are surfaced in the
:class:`SynthesisReport`.
"""

from __future__ import annotations

import hashlib
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
import numpy as np

from .._util import StageTimings, atomic_write_bytes
from ..errors import CheckpointError, SynthesisError
from ..evlog.multifile import LogSet, try_read_time_slice
from ..evlog.schema import LogRecordArray
from ..distrib.taskpool import SerialPool, WorkerPool
from .adjacency import accumulate_adjacency, sum_adjacency_list
from .balance import BalanceReport, balance_by_nnz
from .colloc import CollocationMatrix, collocation_matrix_for_place
from .network import CollocationNetwork
from .slicing import records_by_place, slice_records

__all__ = [
    "SynthesisReport",
    "synthesize_network",
    "synthesize_from_logs",
    "validate_place_locality",
    "checkpoint_digest",
    "load_checkpoint_manifest",
    "CHECKPOINT_MANIFEST",
    "CHECKPOINT_PARTIAL",
]

CHECKPOINT_MANIFEST = "manifest.json"
CHECKPOINT_PARTIAL = "partial.npz"
_CHECKPOINT_VERSION = 1


@dataclass
class SynthesisReport:
    """Observability for one synthesis run."""

    n_records: int = 0
    n_sliced_records: int = 0
    n_places: int = 0
    n_workers: int = 1
    colloc_nnz_total: int = 0
    balance: BalanceReport | None = None
    timings: StageTimings = field(default_factory=StageTimings)
    batches: int = 1
    #: worker-task re-executions performed by the pool's retry policy
    n_retries: int = 0
    #: damaged log files skipped instead of killing the run
    quarantined: list[str] = field(default_factory=list)
    #: best-effort count of intact records inside quarantined files
    skipped_records: int = 0
    #: batches restored from a checkpoint rather than recomputed
    resumed_batches: int = 0

    def summary(self) -> str:
        lines = [
            f"records          {self.n_records:>12,}",
            f"in slice         {self.n_sliced_records:>12,}",
            f"places           {self.n_places:>12,}",
            f"workers          {self.n_workers:>12,}",
            f"presence nnz     {self.colloc_nnz_total:>12,}",
            f"batches          {self.batches:>12,}",
        ]
        if self.balance is not None:
            lines.append(f"load imbalance   {self.balance.imbalance:>12.3f}")
        if self.n_retries:
            lines.append(f"task retries     {self.n_retries:>12,}")
        if self.resumed_batches:
            lines.append(f"resumed batches  {self.resumed_batches:>12,}")
        if self.quarantined:
            lines.append(
                f"quarantined      {len(self.quarantined):>12,} file(s), "
                f"~{self.skipped_records:,} records skipped"
            )
            lines.extend(f"  !! {name}" for name in self.quarantined)
        lines.append("--- timings ---")
        lines.append(self.timings.report())
        return "\n".join(lines)


def _matrices_task(
    chunk: tuple[list[tuple[int, LogRecordArray]], int, int],
) -> list[CollocationMatrix]:
    """Stage-2 worker: build collocation matrices for a chunk of places."""
    groups, t0, t1 = chunk
    return [
        collocation_matrix_for_place(place, records, t0, t1)
        for place, records in groups
    ]


def _adjacency_task(
    chunk: tuple[list[CollocationMatrix], int],
):
    """Stage-4 worker: sum ``x·xᵀ`` over its balanced matrix share."""
    matrices, n_persons = chunk
    return sum_adjacency_list(matrices, n_persons)


def _chunk_groups(
    groups: list[tuple[int, LogRecordArray]], n_chunks: int
) -> list[list[tuple[int, LogRecordArray]]]:
    """Split place groups into roughly record-balanced chunks, preserving
    a deterministic order."""
    if n_chunks <= 1 or len(groups) <= 1:
        return [groups]
    # simple greedy by record count, stable across runs
    sizes = np.array([len(rec) for _, rec in groups], dtype=np.int64)
    order = np.argsort(-sizes, kind="stable")
    loads = np.zeros(n_chunks, dtype=np.int64)
    chunks: list[list[tuple[int, LogRecordArray]]] = [[] for _ in range(n_chunks)]
    for i in order:
        b = int(np.argmin(loads))
        chunks[b].append(groups[int(i)])
        loads[b] += sizes[i]
    return [c for c in chunks if c]


# -- checkpointing -----------------------------------------------------------


def checkpoint_digest(
    log_set: LogSet, n_persons: int, t0: int, t1: int, batch_size: int
) -> str:
    """Configuration fingerprint a checkpoint is only valid against.

    Covers everything that changes which records land in which batch: the
    ordered file list, the population size, the analysis window, and the
    batch size.  Resuming against a different digest is refused.
    """
    payload = {
        "version": _CHECKPOINT_VERSION,
        "n_persons": int(n_persons),
        "t0": int(t0),
        "t1": int(t1),
        "batch_size": int(batch_size),
        "files": [p.name for p in log_set.paths],
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def load_checkpoint_manifest(directory: str | Path) -> dict:
    """Read and structurally validate a checkpoint manifest."""
    path = Path(directory) / CHECKPOINT_MANIFEST
    if not path.is_file():
        raise CheckpointError(f"no checkpoint manifest at {path}")
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint manifest {path}: {exc}") from exc
    for key in ("version", "digest", "batches_done", "has_partial", "report"):
        if key not in manifest:
            raise CheckpointError(f"checkpoint manifest {path} missing {key!r}")
    if manifest["version"] != _CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {manifest['version']} unsupported "
            f"(expected {_CHECKPOINT_VERSION})"
        )
    return manifest


def _write_checkpoint(
    directory: Path,
    digest: str,
    batches_done: int,
    network: CollocationNetwork | None,
    report: SynthesisReport,
) -> None:
    """Persist the state after a completed batch.

    The partial matrix is written first, the manifest last; both writes are
    atomic, so the manifest is the commit point — a crash between the two
    leaves the previous (still consistent) checkpoint in force.
    """
    directory.mkdir(parents=True, exist_ok=True)
    if network is not None:
        a = network.adjacency
        buf = io.BytesIO()
        np.savez_compressed(
            buf,
            data=a.data,
            indices=a.indices,
            indptr=a.indptr,
            shape=np.array(a.shape, dtype=np.int64),
            window=np.array([network.t0, network.t1], dtype=np.int64),
        )
        atomic_write_bytes(directory / CHECKPOINT_PARTIAL, buf.getvalue())
    manifest = {
        "version": _CHECKPOINT_VERSION,
        "digest": digest,
        "batches_done": batches_done,
        "has_partial": network is not None,
        "report": {
            "n_records": report.n_records,
            "n_sliced_records": report.n_sliced_records,
            "n_places": report.n_places,
            "colloc_nnz_total": report.colloc_nnz_total,
            "n_retries": report.n_retries,
            "quarantined": list(report.quarantined),
            "skipped_records": report.skipped_records,
        },
    }
    atomic_write_bytes(
        directory / CHECKPOINT_MANIFEST,
        json.dumps(manifest, indent=2, sort_keys=True).encode(),
    )


def _recoverable_records(path: Path) -> int:
    """Best-effort intact-record count inside a damaged file (for the
    report's skipped-records line; 0 when even recovery fails)."""
    from ..evlog.reader import LogReader

    try:
        return LogReader(path).n_records
    except Exception:
        return 0


def _pool_retries(pool: WorkerPool) -> int:
    """Cumulative retry count of a pool, 0 for retry-unaware pools."""
    report = getattr(pool, "report", None)
    return getattr(report, "n_retries", 0)


def synthesize_network(
    records: LogRecordArray,
    n_persons: int,
    t0: int,
    t1: int,
    pool: WorkerPool | None = None,
) -> tuple[CollocationNetwork, SynthesisReport]:
    """Build the collocation network for window ``[t0, t1)`` from records.

    Parameters
    ----------
    records:
        Event-log records (any order, any provenance).
    n_persons:
        Population size (matrix dimension).
    t0, t1:
        Analysis window in absolute simulation hours.
    pool:
        Worker pool; default :class:`~repro.distrib.taskpool.SerialPool`.
    """
    if n_persons <= 0:
        raise SynthesisError("n_persons must be positive")
    own_pool = pool is None
    pool = pool or SerialPool()
    report = SynthesisReport(n_records=len(records), n_workers=pool.n_workers)
    timings = report.timings
    retries_before = _pool_retries(pool)
    try:
        with timings.time("slice"):
            sliced = slice_records(records, t0, t1)
        report.n_sliced_records = len(sliced)

        with timings.time("group_by_place"):
            place_ids, groups = records_by_place(sliced)
            paired = list(zip((int(p) for p in place_ids), groups))
        report.n_places = len(paired)

        with timings.time("collocation_matrices"):
            chunks = _chunk_groups(paired, pool.n_workers * 4)
            results = pool.map(
                _matrices_task, [(chunk, t0, t1) for chunk in chunks]
            )
            matrices = [m for sub in results for m in sub]
        report.colloc_nnz_total = sum(m.nnz for m in matrices)

        with timings.time("balance"):
            shares, balance = balance_by_nnz(matrices, pool.n_workers)
        report.balance = balance

        with timings.time("adjacency"):
            partials = pool.map(
                _adjacency_task,
                [(share, n_persons) for share in shares if share],
            )

        with timings.time("reduce"):
            adjacency = accumulate_adjacency(partials, n_persons)
        report.n_retries = _pool_retries(pool) - retries_before
    finally:
        if own_pool:
            pool.close()
    return CollocationNetwork(adjacency, t0=t0, t1=t1), report


def validate_place_locality(log_set: LogSet, batch_size: int) -> bool:
    """Check that no place's records span more than one batch.

    Returns True when batch-independent processing is exact for this log
    directory (always true for logs written by the distributed model,
    whose ranks own disjoint place sets at any time — and places never
    change owner during a run).
    """
    seen: dict[int, int] = {}
    for batch_index, batch in enumerate(log_set.batches(batch_size)):
        places: set[int] = set()
        from ..evlog.reader import LogReader

        for path in batch:
            rec = LogReader(path).read_all()
            places.update(int(p) for p in np.unique(rec["place"]))
        for p in places:
            if p in seen and seen[p] != batch_index:
                return False
            seen[p] = batch_index
    return True


def synthesize_from_logs(
    log_dir: str | Path | LogSet,
    n_persons: int,
    t0: int,
    t1: int,
    batch_size: int = 16,
    pool: WorkerPool | None = None,
    strict: bool = False,
    checkpoint: str | Path | None = None,
    resume: str | Path | None = None,
) -> tuple[CollocationNetwork, SynthesisReport]:
    """Synthesize the network from a directory of per-rank EVL files.

    Files are processed in independent batches of ``batch_size`` (the
    paper's job unit); per-batch networks are summed into the complete
    network.

    Parameters
    ----------
    strict:
        When False (default), a damaged log file — truncated by a killed
        writer or failing a chunk CRC — is quarantined: the whole file is
        skipped, recorded in ``report.quarantined``, and the run continues.
        When True, the first damaged file raises (the pre-quarantine
        behavior).
    checkpoint:
        Directory to persist per-batch checkpoints into.  After each
        completed batch the partial adjacency sum and a manifest are
        committed atomically, so a killed run can resume from the last
        completed batch.
    resume:
        Existing checkpoint directory to resume from.  The checkpoint's
        configuration digest (file list, window, population, batch size)
        must match this call, else :class:`~repro.errors.CheckpointError`
        is raised.  Completed batches are skipped and the partial network
        is restored; checkpointing continues into the same directory unless
        a different ``checkpoint`` is given.
    """
    log_set = log_dir if isinstance(log_dir, LogSet) else LogSet(log_dir)
    own_pool = pool is None
    pool = pool or SerialPool()
    network: CollocationNetwork | None = None
    total_report = SynthesisReport(n_workers=pool.n_workers, batches=0)

    digest = checkpoint_digest(log_set, n_persons, t0, t1, batch_size)
    checkpoint_dir = Path(checkpoint) if checkpoint is not None else None
    resume_dir = Path(resume) if resume is not None else None
    if resume_dir is not None and checkpoint_dir is None:
        checkpoint_dir = resume_dir
    batches_done = 0
    if resume_dir is not None:
        manifest = load_checkpoint_manifest(resume_dir)
        if manifest["digest"] != digest:
            raise CheckpointError(
                f"checkpoint in {resume_dir} was written for a different "
                "configuration (file list, window, population, or batch "
                "size changed); refusing to resume"
            )
        batches_done = int(manifest["batches_done"])
        if manifest["has_partial"]:
            partial = resume_dir / CHECKPOINT_PARTIAL
            if not partial.is_file():
                raise CheckpointError(
                    f"manifest in {resume_dir} references a partial matrix "
                    "but partial.npz is missing"
                )
            network = CollocationNetwork.load(partial)
        saved = manifest["report"]
        total_report.n_records = int(saved["n_records"])
        total_report.n_sliced_records = int(saved["n_sliced_records"])
        total_report.n_places = int(saved["n_places"])
        total_report.colloc_nnz_total = int(saved["colloc_nnz_total"])
        total_report.n_retries = int(saved["n_retries"])
        total_report.quarantined = list(saved["quarantined"])
        total_report.skipped_records = int(saved["skipped_records"])
        total_report.batches = batches_done
        total_report.resumed_batches = batches_done

    try:
        from ..evlog.reader import LogReader

        for batch_index, batch in enumerate(log_set.batches(batch_size)):
            if batch_index < batches_done:
                continue
            parts = []
            with total_report.timings.time("load"):
                for path in batch:
                    if strict:
                        rec = LogReader(path).read_time_slice(t0, t1)
                    else:
                        rec, _reason = try_read_time_slice(path, t0, t1)
                        if rec is None:
                            total_report.quarantined.append(str(path))
                            total_report.skipped_records += (
                                _recoverable_records(path)
                            )
                            continue
                    if len(rec):
                        parts.append(rec)
            if parts:
                records = (
                    np.concatenate(parts) if len(parts) > 1 else parts[0]
                )
                batch_net, batch_report = synthesize_network(
                    records, n_persons, t0, t1, pool=pool
                )
                network = batch_net if network is None else network + batch_net
                total_report.n_records += batch_report.n_records
                total_report.n_sliced_records += batch_report.n_sliced_records
                total_report.n_places += batch_report.n_places
                total_report.colloc_nnz_total += batch_report.colloc_nnz_total
                total_report.balance = batch_report.balance
                total_report.n_retries += batch_report.n_retries
                for name, secs in batch_report.timings.stages.items():
                    total_report.timings.add(name, secs)
            total_report.batches += 1
            if checkpoint_dir is not None:
                with total_report.timings.time("checkpoint"):
                    _write_checkpoint(
                        checkpoint_dir,
                        digest,
                        batch_index + 1,
                        network,
                        total_report,
                    )
    finally:
        if own_pool:
            pool.close()
    if network is None:
        network = CollocationNetwork(
            accumulate_adjacency([], n_persons), t0=t0, t1=t1
        )
    return network, total_report
