"""End-to-end synthesis orchestration (paper Section IV.A).

The stages map one-to-one onto the paper's:

1. *data loading* — read per-rank EVL files (root);
2. *collocation matrices creation* — slice the window, group records by
   place, map matrix construction over a worker pool;
3. *collocation matrix list partitioning* — LPT by nnz across workers;
4. *adjacency matrices creation* — each worker computes and sums its
   ``x·xᵀ`` share; the root reduces to one upper-triangular matrix.

Log files are processed in independent batches ("batches of 16 files at a
time"); batch networks are summed.  Batch independence relies on the
distributed model's place ownership: every record for a place lives in
exactly one rank's file, so a place's collocation matrix is never split
across batches.  ``validate_place_locality`` makes that precondition
checkable for logs of unknown provenance.

Fault tolerance (this layer)
----------------------------
Batch independence is also the recovery unit.  After every completed batch
the pipeline can persist a checkpoint — the partial adjacency sum plus a
manifest recording the configuration digest and how many batches are done —
written atomically so a run killed mid-batch resumes from the last
completed batch and produces a bit-identical network.  Damaged log files
(truncated or failing CRC) are quarantined instead of killing the run
(``strict=True`` restores the raise-on-damage behavior), and worker-task
retries performed by the pool are surfaced in the
:class:`SynthesisReport`.
"""

from __future__ import annotations

import hashlib
import io
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
import numpy as np

from .._util import StageTimings, atomic_write_bytes
from ..errors import CheckpointError, SynthesisError
from ..evlog.multifile import LogSet, try_read_time_slice, try_slice_descriptor
from ..evlog.reader import (
    LogReader,
    SliceDescriptor,
    read_slice_columns,
    read_slice_descriptor,
)
from ..evlog.schema import LogRecordArray
from ..distrib.taskpool import SerialPool, WorkerPool
from .adjacency import accumulate_adjacency, sum_adjacency_list
from .balance import BalanceReport, balance_by_work, lpt_partition
from .colloc import (
    CollocationMatrix,
    build_collocation_matrices,
    collocation_matrix_for_place,
    merge_collocations,
)
from .intervals import (
    IntervalPack,
    build_interval_pack,
    build_interval_pack_columns,
    merge_packs,
    select_pack_places,
    sum_pack_adjacency,
)
from ..obs import current_context, start_span
from .kernels import (
    KERNEL_STAGES,
    absorb_task_telemetry,
    check_backend,
    collect_kernel_timings,
    collect_task_telemetry,
    merge_kernel_timings,
    resolve_backend,
    task_span,
)
from .network import CollocationNetwork
from .slicing import clip_records, records_by_place, slice_records

__all__ = [
    "SynthesisReport",
    "synthesize_network",
    "synthesize_from_logs",
    "validate_place_locality",
    "checkpoint_digest",
    "load_checkpoint_manifest",
    "CHECKPOINT_MANIFEST",
    "CHECKPOINT_PARTIAL",
    "KERNELS",
    "DISPATCHES",
]

CHECKPOINT_MANIFEST = "manifest.json"
CHECKPOINT_PARTIAL = "partial.npz"
_CHECKPOINT_VERSION = 1

#: collocation kernels: the legacy per-hour expansion and the
#: interval-overlap default.  Both produce bit-identical networks; the
#: kernel (like the dispatch mode) is deliberately *excluded* from the
#: checkpoint digest so a run may resume under either.
KERNELS = ("dense-hours", "intervals")
DEFAULT_KERNEL = "intervals"

#: how record data reaches stage-2 workers: ``value`` pickles record
#: arrays (legacy), ``zero-copy`` ships :class:`SliceDescriptor` byte
#: ranges and workers mmap the EVL files themselves.
DISPATCHES = ("value", "zero-copy")
DEFAULT_DISPATCH = "value"

# The third knob, ``backend=`` (scipy reference vs. compiled masked
# SpGEMM), lives in :mod:`repro.core.kernels`.  Like kernel and
# dispatch it is excluded from the checkpoint digest: every backend is
# bit-identical, so a run may resume under any of them.


def _check_kernel(kernel: str) -> None:
    if kernel not in KERNELS:
        raise SynthesisError(f"unknown kernel {kernel!r}; choose from {KERNELS}")


def _check_dispatch(dispatch: str) -> None:
    if dispatch not in DISPATCHES:
        raise SynthesisError(
            f"unknown dispatch {dispatch!r}; choose from {DISPATCHES}"
        )


@dataclass
class SynthesisReport:
    """Observability for one synthesis run."""

    n_records: int = 0
    n_sliced_records: int = 0
    n_places: int = 0
    n_workers: int = 1
    colloc_nnz_total: int = 0
    #: for batched runs, the *worst-case* batch balance (highest
    #: max/mean imbalance), not the last batch's
    balance: BalanceReport | None = None
    timings: StageTimings = field(default_factory=StageTimings)
    batches: int = 1
    #: worker-task re-executions performed by the pool's retry policy
    n_retries: int = 0
    #: damaged log files skipped instead of killing the run
    quarantined: list[str] = field(default_factory=list)
    #: best-effort count of intact records inside quarantined files
    skipped_records: int = 0
    #: batches restored from a checkpoint rather than recomputed
    resumed_batches: int = 0
    #: collocation kernel the run used
    kernel: str = DEFAULT_KERNEL
    #: how record data reached stage-2 workers
    dispatch: str = DEFAULT_DISPATCH
    #: kernel backend the run resolved to (never "auto")
    backend: str = "scipy"
    #: per-stage kernel seconds (pack build / SpGEMM / accumulate),
    #: summed across workers — attributable compute, not wall time
    kernel_timings: dict = field(default_factory=dict)

    def summary(self) -> str:
        lines = [
            f"kernel           {self.kernel:>12}",
            f"dispatch         {self.dispatch:>12}",
            f"backend          {self.backend:>12}",
            f"records          {self.n_records:>12,}",
            f"in slice         {self.n_sliced_records:>12,}",
            f"places           {self.n_places:>12,}",
            f"workers          {self.n_workers:>12,}",
            f"person-hours     {self.colloc_nnz_total:>12,}",
            f"batches          {self.batches:>12,}",
        ]
        if self.balance is not None:
            lines.append(f"load imbalance   {self.balance.imbalance:>12.3f}")
        if self.n_retries:
            lines.append(f"task retries     {self.n_retries:>12,}")
        if self.resumed_batches:
            lines.append(f"resumed batches  {self.resumed_batches:>12,}")
        if self.quarantined:
            lines.append(
                f"quarantined      {len(self.quarantined):>12,} file(s), "
                f"~{self.skipped_records:,} records skipped"
            )
            lines.extend(f"  !! {name}" for name in self.quarantined)
        lines.append("--- timings ---")
        lines.append(self.timings.report())
        if self.kernel_timings:
            lines.append("--- kernel stages (worker compute) ---")
            for name in KERNEL_STAGES:
                if name in self.kernel_timings:
                    lines.append(
                        f"{name:<16} {self.kernel_timings[name]:>11.4f}s"
                    )
        return "\n".join(lines)


def _matrices_task(
    chunk: tuple[list[tuple[int, LogRecordArray]], int, int],
) -> list[CollocationMatrix]:
    """Stage-2 worker: build collocation matrices for a chunk of places."""
    groups, t0, t1 = chunk
    return [
        collocation_matrix_for_place(place, records, t0, t1)
        for place, records in groups
    ]


def _adjacency_task(
    chunk: tuple[list[CollocationMatrix], int, str],
):
    """Stage-4 worker: sum ``x·xᵀ`` over its balanced matrix share."""
    matrices, n_persons, backend = chunk
    out = sum_adjacency_list(matrices, n_persons, backend=backend)
    return out, collect_kernel_timings()


def _pack_task(chunk: tuple[LogRecordArray, int, int, str]):
    """Stage-2 worker (interval kernel): one pack per place-disjoint slab."""
    records, t0, t1, backend = chunk
    pack = build_interval_pack(records, t0, t1, backend=backend)
    return pack, collect_kernel_timings()


def _pack_adjacency_task(chunk: "tuple[list[IntervalPack], int, str]"):
    """Stage-4 worker (interval kernel): stacked weighted product over the
    balanced place share."""
    packs, n_persons, backend = chunk
    out = sum_pack_adjacency(packs, n_persons, backend=backend)
    return out, collect_kernel_timings()


def _descriptor_task(args: "tuple[SliceDescriptor, str, str] | tuple[SliceDescriptor, str, str, dict | None]"):
    """Stage-2 worker under zero-copy dispatch: mmap + decode + build.

    Receives only a byte-range descriptor (plus, optionally, the
    coordinator's wire trace context); reads the slice itself, clips it,
    and builds the kernel's per-file unit.  Returns ``(payload,
    n_records, telemetry)`` where payload is an :class:`IntervalPack`
    (or None for an empty slice) or a list of :class:`CollocationMatrix`,
    and telemetry carries the kernel stage times plus any spans finished
    in this worker — re-parented to the coordinator's trace on absorb.
    """
    descriptor, kernel, backend = args[:3]
    trace = args[3] if len(args) > 3 else None
    # the span must close before telemetry is collected, so the captured
    # list already holds it when it ships back with the payload
    with task_span(
        "worker.build",
        trace,
        attrs={"file": Path(descriptor.path).name, "kernel": kernel},
    ) as spans:
        if kernel == "intervals":
            # columnar decode: mmap'd chunks land as clipped int64 columns
            # with no intermediate struct-record copies
            starts, stops, person, place = read_slice_columns(descriptor)
            n = len(starts)
            payload = (
                build_interval_pack_columns(
                    starts,
                    stops,
                    person,
                    place,
                    descriptor.t0,
                    descriptor.t1,
                    backend=backend,
                )
                if n
                else None
            )
        else:
            raw = read_slice_descriptor(descriptor)
            # descriptor materialization already applied the window mask;
            # only the interval clip remains to match slice_records()
            # output exactly.
            sliced = (
                clip_records(raw, descriptor.t0, descriptor.t1)
                if len(raw)
                else raw
            )
            n = len(raw)
            payload = (
                build_collocation_matrices(sliced, descriptor.t0, descriptor.t1)
                if len(sliced)
                else []
            )
    return payload, n, collect_task_telemetry(spans)


def _place_slabs(sliced: LogRecordArray, n_chunks: int) -> list[LogRecordArray]:
    """Interval-kernel task chunking: sort records by place and cut the
    sorted array at place boundaries into ~record-balanced contiguous
    slabs.  Cheaper than materializing per-place groups — one argsort,
    no per-place view objects — and each slab is place-disjoint, so slab
    packs never share a place."""
    if len(sliced) == 0:
        return []
    rec = sliced[np.argsort(sliced["place"], kind="stable")]
    if n_chunks <= 1:
        return [rec]
    pl = rec["place"]
    group_starts = np.flatnonzero(np.concatenate(([True], pl[1:] != pl[:-1])))
    targets = (np.arange(1, n_chunks) * len(rec)) // n_chunks
    cut_idx = np.minimum(
        np.searchsorted(group_starts, targets, side="left"),
        len(group_starts) - 1,
    )
    offsets = np.unique(np.concatenate(([0], group_starts[cut_idx], [len(rec)])))
    return [rec[a:b] for a, b in zip(offsets[:-1], offsets[1:]) if b > a]


def _balance_packs(
    packs: list[IntervalPack], n_workers: int
) -> tuple[list[list[IntervalPack]], BalanceReport]:
    """Stage 3 for the interval kernel.

    The balancing unit is the *place* (as in the legacy pipeline), weighted
    by estimated pairwise work; each worker's share is delivered as column
    slices of the source packs, so stage 4 stays one matmul per pack."""
    packs = [p for p in packs if p is not None and p.n_places]
    if not packs:
        _, report = lpt_partition([], n_workers)
        return [[] for _ in range(n_workers)], report
    work = np.concatenate([p.place_work for p in packs])
    pack_of = np.repeat(
        np.arange(len(packs)), [p.n_places for p in packs]
    )
    place_of = np.concatenate([p.places for p in packs])
    buckets, report = lpt_partition(work, n_workers)
    shares: list[list[IntervalPack]] = []
    for bucket in buckets:
        share: list[IntervalPack] = []
        if bucket:
            sel = np.asarray(bucket)
            for i in np.unique(pack_of[sel]):
                sub = select_pack_places(
                    packs[int(i)],
                    np.sort(place_of[sel[pack_of[sel] == i]]),
                )
                if sub is not None:
                    share.append(sub)
        shares.append(share)
    return shares, report


def _merge_balance(report: SynthesisReport, balance: BalanceReport | None) -> None:
    """Keep the worst-case (highest-imbalance) batch balance on the report."""
    if balance is None:
        return
    if report.balance is None or balance.imbalance > report.balance.imbalance:
        report.balance = balance


def _merge_duplicate_packs(packs: list[IntervalPack]) -> list[IntervalPack]:
    """Zero-copy tasks are per file, so a place whose records span several
    files arrives in several packs.  Merge exactly those places (union of
    boundaries and presence — bit-identical to a single build from the
    concatenated records); disjoint packs pass through untouched, which is
    the only case for locality-respecting per-rank logs."""
    packs = [p for p in packs if p is not None]
    if len(packs) <= 1:
        return packs
    uniq, counts = np.unique(
        np.concatenate([p.places for p in packs]), return_counts=True
    )
    dups = uniq[counts > 1]
    if not len(dups):
        return packs
    kept: list[IntervalPack] = []
    shared: list[IntervalPack] = []
    for p in packs:
        sub = select_pack_places(p, dups)
        if sub is None:
            kept.append(p)
            continue
        shared.append(sub)
        rest = select_pack_places(p, np.setdiff1d(p.places, dups))
        if rest is not None:
            kept.append(rest)
    kept.append(merge_packs(shared))
    return kept


def _merge_duplicate_colloc(
    matrices: list[CollocationMatrix],
) -> list[CollocationMatrix]:
    """Dense-kernel twin of :func:`_merge_duplicate_packs`."""
    by_place: dict[int, list[CollocationMatrix]] = {}
    for m in matrices:
        by_place.setdefault(m.place, []).append(m)
    if all(len(v) == 1 for v in by_place.values()):
        return matrices
    return [merge_collocations(by_place[p]) for p in sorted(by_place)]


def _chunk_groups(
    groups: list[tuple[int, LogRecordArray]], n_chunks: int
) -> list[list[tuple[int, LogRecordArray]]]:
    """Split place groups into roughly record-balanced chunks, preserving
    a deterministic order."""
    if n_chunks <= 1 or len(groups) <= 1:
        return [groups]
    # simple greedy by record count, stable across runs
    sizes = np.array([len(rec) for _, rec in groups], dtype=np.int64)
    order = np.argsort(-sizes, kind="stable")
    loads = np.zeros(n_chunks, dtype=np.int64)
    chunks: list[list[tuple[int, LogRecordArray]]] = [[] for _ in range(n_chunks)]
    for i in order:
        b = int(np.argmin(loads))
        chunks[b].append(groups[int(i)])
        loads[b] += sizes[i]
    return [c for c in chunks if c]


# -- checkpointing -----------------------------------------------------------


def checkpoint_digest(
    log_set: LogSet, n_persons: int, t0: int, t1: int, batch_size: int
) -> str:
    """Configuration fingerprint a checkpoint is only valid against.

    Covers everything that changes which records land in which batch: the
    ordered file list, the population size, the analysis window, and the
    batch size.  Resuming against a different digest is refused.
    """
    payload = {
        "version": _CHECKPOINT_VERSION,
        "n_persons": int(n_persons),
        "t0": int(t0),
        "t1": int(t1),
        "batch_size": int(batch_size),
        "files": [p.name for p in log_set.paths],
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def load_checkpoint_manifest(directory: str | Path) -> dict:
    """Read and structurally validate a checkpoint manifest."""
    path = Path(directory) / CHECKPOINT_MANIFEST
    if not path.is_file():
        raise CheckpointError(f"no checkpoint manifest at {path}")
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint manifest {path}: {exc}") from exc
    for key in ("version", "digest", "batches_done", "has_partial", "report"):
        if key not in manifest:
            raise CheckpointError(f"checkpoint manifest {path} missing {key!r}")
    if manifest["version"] != _CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {manifest['version']} unsupported "
            f"(expected {_CHECKPOINT_VERSION})"
        )
    return manifest


def _write_checkpoint(
    directory: Path,
    digest: str,
    batches_done: int,
    network: CollocationNetwork | None,
    report: SynthesisReport,
) -> None:
    """Persist the state after a completed batch.

    The partial matrix is written first, the manifest last; both writes are
    atomic, so the manifest is the commit point — a crash between the two
    leaves the previous (still consistent) checkpoint in force.
    """
    directory.mkdir(parents=True, exist_ok=True)
    if network is not None:
        a = network.adjacency
        buf = io.BytesIO()
        np.savez_compressed(
            buf,
            data=a.data,
            indices=a.indices,
            indptr=a.indptr,
            shape=np.array(a.shape, dtype=np.int64),
            window=np.array([network.t0, network.t1], dtype=np.int64),
        )
        atomic_write_bytes(directory / CHECKPOINT_PARTIAL, buf.getvalue())
    manifest = {
        "version": _CHECKPOINT_VERSION,
        "digest": digest,
        "batches_done": batches_done,
        "has_partial": network is not None,
        "report": {
            "n_records": report.n_records,
            "n_sliced_records": report.n_sliced_records,
            "n_places": report.n_places,
            "colloc_nnz_total": report.colloc_nnz_total,
            "n_retries": report.n_retries,
            "quarantined": list(report.quarantined),
            "skipped_records": report.skipped_records,
        },
    }
    atomic_write_bytes(
        directory / CHECKPOINT_MANIFEST,
        json.dumps(manifest, indent=2, sort_keys=True).encode(),
    )


def _recoverable_records(path: Path) -> int:
    """Best-effort intact-record count inside a damaged file (for the
    report's skipped-records line; 0 when even recovery fails)."""
    from ..evlog.reader import LogReader

    try:
        return LogReader(path).n_records
    except Exception:
        return 0


def _pool_retries(pool: WorkerPool) -> int:
    """Cumulative retry count of a pool, 0 for retry-unaware pools."""
    report = getattr(pool, "report", None)
    return getattr(report, "n_retries", 0)


def synthesize_network(
    records: LogRecordArray,
    n_persons: int,
    t0: int,
    t1: int,
    pool: WorkerPool | None = None,
    kernel: str = DEFAULT_KERNEL,
    backend: str | None = None,
) -> tuple[CollocationNetwork, SynthesisReport]:
    """Build the collocation network for window ``[t0, t1)`` from records.

    Parameters
    ----------
    records:
        Event-log records (any order, any provenance).
    n_persons:
        Population size (matrix dimension).
    t0, t1:
        Analysis window in absolute simulation hours.
    pool:
        Worker pool; default :class:`~repro.distrib.taskpool.SerialPool`.
    kernel:
        ``"intervals"`` (default) computes collocated hours from
        ``[start, stop)`` spell overlaps; ``"dense-hours"`` is the paper's
        per-hour presence expansion.  Both produce bit-identical networks
        (equivalence-tested); the interval kernel's cost is independent of
        window length.
    backend:
        Kernel backend (:mod:`repro.core.kernels`): ``"scipy"`` reference,
        ``"masked"`` compiled masked-triangular SpGEMM, or ``"auto"``
        (default) — masked when a compiled implementation is available.
        Bit-identical either way.
    """
    if n_persons <= 0:
        raise SynthesisError("n_persons must be positive")
    _check_kernel(kernel)
    # resolve once at the root so every worker runs the same concrete
    # backend regardless of its own environment
    backend = resolve_backend(backend)
    own_pool = pool is None
    pool = pool or SerialPool()
    report = SynthesisReport(
        n_records=len(records),
        n_workers=pool.n_workers,
        kernel=kernel,
        backend=backend,
    )
    timings = report.timings
    retries_before = _pool_retries(pool)
    span = start_span(
        "synthesize_network",
        attrs={"kernel": kernel, "backend": backend, "t0": t0, "t1": t1},
    )
    span.__enter__()
    try:
        with timings.time("slice"):
            sliced = slice_records(records, t0, t1)
        report.n_sliced_records = len(sliced)

        if kernel == "intervals":
            with timings.time("group_by_place"):
                slabs = _place_slabs(sliced, pool.n_workers * 4)
            with timings.time("collocation_matrices"):
                built = pool.map(
                    _pack_task, [(slab, t0, t1, backend) for slab in slabs]
                )
                packs = [p for p, _t in built]
                for _p, times in built:
                    absorb_task_telemetry(report.kernel_timings, times)
            report.n_places = sum(p.n_places for p in packs)
            report.colloc_nnz_total = sum(p.person_hours for p in packs)
            with timings.time("balance"):
                shares, balance = _balance_packs(packs, pool.n_workers)
            report.balance = balance
            with timings.time("adjacency"):
                summed = pool.map(
                    _pack_adjacency_task,
                    [(share, n_persons, backend) for share in shares if share],
                )
        else:
            with timings.time("group_by_place"):
                place_ids, groups = records_by_place(sliced)
                paired = list(zip((int(p) for p in place_ids), groups))
            report.n_places = len(paired)
            with timings.time("collocation_matrices"):
                chunks = _chunk_groups(paired, pool.n_workers * 4)
                results = pool.map(
                    _matrices_task, [(chunk, t0, t1) for chunk in chunks]
                )
                matrices = [m for sub in results for m in sub]
            report.colloc_nnz_total = sum(m.nnz for m in matrices)
            with timings.time("balance"):
                shares, balance = balance_by_work(matrices, pool.n_workers)
            report.balance = balance
            with timings.time("adjacency"):
                summed = pool.map(
                    _adjacency_task,
                    [(share, n_persons, backend) for share in shares if share],
                )

        partials = [a for a, _t in summed]
        for _a, times in summed:
            absorb_task_telemetry(report.kernel_timings, times)
        with timings.time("reduce"):
            adjacency = accumulate_adjacency(partials, n_persons)
        report.n_retries = _pool_retries(pool) - retries_before
        span.set_attr("n_records", report.n_records)
        span.set_attr("n_places", report.n_places)
    finally:
        if own_pool:
            pool.close()
        span.__exit__(*sys.exc_info())
    return CollocationNetwork(adjacency, t0=t0, t1=t1), report


def validate_place_locality(
    log_set: LogSet,
    batch_size: int,
    t0: int | None = None,
    t1: int | None = None,
) -> bool:
    """Check that no place's records span more than one batch.

    Returns True when batch-independent processing is exact for this log
    directory (always true for logs written by the distributed model,
    whose ranks own disjoint place sets at any time — and places never
    change owner during a run).

    With a window, only chunks whose time envelope overlaps ``[t0, t1)``
    are decoded (the records a synthesis over that window would see);
    memory stays bounded at one chunk, and only the ``place`` column is
    retained per chunk.
    """
    windowed = t0 is not None and t1 is not None
    seen: dict[int, int] = {}
    for batch_index, batch in enumerate(log_set.batches(batch_size)):
        places: set[int] = set()
        for path in batch:
            with LogReader(path, use_mmap=True) as reader:
                for chunk in reader.chunks:
                    if windowed and not chunk.overlaps(t0, t1):
                        continue
                    rec = reader._decode(chunk)
                    if windowed:
                        rec = rec[(rec["start"] < t1) & (rec["stop"] > t0)]
                    places.update(int(p) for p in np.unique(rec["place"]))
        for p in places:
            if p in seen and seen[p] != batch_index:
                return False
            seen[p] = batch_index
    return True


def _synthesize_batch_descriptors(
    batch: list[Path],
    n_persons: int,
    t0: int,
    t1: int,
    pool: WorkerPool,
    kernel: str,
    backend: str,
    strict: bool,
    report: SynthesisReport,
) -> CollocationNetwork | None:
    """One batch under zero-copy dispatch, mutating *report* in place.

    The root never decodes a record: it reads each file's chunk index,
    CRC-checks the framing (whole file when quarantining, window chunks
    when strict — mirroring what the by-value path would decode), and
    ships O(1)-size :class:`SliceDescriptor` tasks.  Workers mmap, decode,
    and build; places split across files are union-merged at the root so
    the output is bit-identical to by-value dispatch.
    """
    timings = report.timings
    retries_before = _pool_retries(pool)
    span = start_span("batch", attrs={"files": len(batch), "dispatch": "zero-copy"})
    span.__enter__()
    try:
        return _batch_descriptors_traced(
            batch, n_persons, t0, t1, pool, kernel, backend, strict, report,
            span,
        )
    finally:
        report.n_retries += _pool_retries(pool) - retries_before
        span.__exit__(*sys.exc_info())


def _batch_descriptors_traced(
    batch: list[Path],
    n_persons: int,
    t0: int,
    t1: int,
    pool: WorkerPool,
    kernel: str,
    backend: str,
    strict: bool,
    report: SynthesisReport,
    span,
) -> CollocationNetwork | None:
    timings = report.timings
    with timings.time("load"):
        descriptors: list[SliceDescriptor] = []
        for path in batch:
            if strict:
                with LogReader(path, strict=True, use_mmap=True) as reader:
                    reader.check_crc(t0, t1)
                    descriptor = reader.slice_descriptor(t0, t1)
            else:
                descriptor, _reason = try_slice_descriptor(path, t0, t1)
                if descriptor is None:
                    report.quarantined.append(str(path))
                    report.skipped_records += _recoverable_records(path)
                    continue
            if descriptor.chunk_offsets:
                descriptors.append(descriptor)
    if not descriptors:
        return None
    with timings.time("collocation_matrices"):
        # ship the batch span's context into the workers: their build
        # spans come back in the task telemetry and re-attach under it
        ctx = current_context()
        wire = ctx.to_wire() if ctx is not None else None
        results = pool.map(
            _descriptor_task, [(d, kernel, backend, wire) for d in descriptors]
        )
    n_read = sum(n for _payload, n, _t in results)
    report.n_records += n_read
    report.n_sliced_records += n_read
    for _payload, _n, telemetry in results:
        absorb_task_telemetry(report.kernel_timings, telemetry)
    if kernel == "intervals":
        with timings.time("merge"):
            packs = _merge_duplicate_packs([p for p, _n, _t in results])
        report.n_places += sum(p.n_places for p in packs)
        report.colloc_nnz_total += sum(p.person_hours for p in packs)
        with timings.time("balance"):
            shares, balance = _balance_packs(packs, pool.n_workers)
        adjacency_task = _pack_adjacency_task
    else:
        with timings.time("merge"):
            matrices = _merge_duplicate_colloc(
                [m for ms, _n, _t in results for m in ms]
            )
        report.n_places += len(matrices)
        report.colloc_nnz_total += sum(m.nnz for m in matrices)
        with timings.time("balance"):
            shares, balance = balance_by_work(matrices, pool.n_workers)
        adjacency_task = _adjacency_task
    _merge_balance(report, balance)
    with timings.time("adjacency"):
        summed = pool.map(
            adjacency_task,
            [(share, n_persons, backend) for share in shares if share],
        )
    partials = [a for a, _t in summed]
    for _a, times in summed:
        absorb_task_telemetry(report.kernel_timings, times)
    with timings.time("reduce"):
        adjacency = accumulate_adjacency(partials, n_persons)
    span.set_attr("records", n_read)
    return CollocationNetwork(adjacency, t0=t0, t1=t1)


def synthesize_from_logs(
    log_dir: str | Path | LogSet,
    n_persons: int,
    t0: int,
    t1: int,
    batch_size: int = 16,
    pool: WorkerPool | None = None,
    strict: bool = False,
    checkpoint: str | Path | None = None,
    resume: str | Path | None = None,
    kernel: str = DEFAULT_KERNEL,
    dispatch: str = DEFAULT_DISPATCH,
    backend: str | None = None,
    cache=None,
    plan=None,
) -> tuple[CollocationNetwork, SynthesisReport]:
    """Synthesize the network from a directory of per-rank EVL files.

    Files are processed in independent batches of ``batch_size`` (the
    paper's job unit); per-batch networks are summed into the complete
    network.

    Parameters
    ----------
    kernel:
        Collocation kernel, see :func:`synthesize_network`.
    dispatch:
        ``"value"`` (default) reads and pickles record arrays at the root;
        ``"zero-copy"`` ships ``(path, chunk byte offsets, window)``
        descriptors and lets workers mmap the files themselves —
        root→worker traffic drops from O(records) to O(1) per task.
        Output is bit-identical either way; checkpoints are compatible
        across both kernels and both dispatch modes.
    backend:
        Kernel backend, see :func:`synthesize_network`.  Bit-identical
        across backends; checkpoints are compatible across all of them.
    strict:
        When False (default), a damaged log file — truncated by a killed
        writer or failing a chunk CRC — is quarantined: the whole file is
        skipped, recorded in ``report.quarantined``, and the run continues.
        When True, the first damaged file raises (the pre-quarantine
        behavior).
    checkpoint:
        Directory to persist per-batch checkpoints into.  After each
        completed batch the partial adjacency sum and a manifest are
        committed atomically, so a killed run can resume from the last
        completed batch.
    resume:
        Existing checkpoint directory to resume from.  The checkpoint's
        configuration digest (file list, window, population, batch size)
        must match this call, else :class:`~repro.errors.CheckpointError`
        is raised.  Completed batches are skipped and the partial network
        is restored; checkpointing continues into the same directory unless
        a different ``checkpoint`` is given.
    cache:
        A :class:`~repro.core.tilecache.TileCache` over the same log
        directory.  When given, the window is served from the cache's
        composable tiles — bit-identical to the direct interval-kernel
        synthesis, O(log W) cached partials instead of a record re-read —
        and the batching arguments are unused.  Incompatible with
        ``checkpoint``/``resume`` (the cache *is* the persistent state),
        with the dense-hours kernel, and with ``strict=True`` when the
        cache already quarantined damaged files.  The cache path is
        thread-safe: concurrent callers may share one cache (the
        network-query service does).
    plan:
        A :class:`~repro.core.plan.SynthesisPlan`.  When given, the plan
        is authoritative for kernel, dispatch, backend, batch size, and
        strictness (the individual keyword arguments are ignored for
        those knobs); ``checkpoint``/``resume`` keep an explicit argument
        over the plan's.  ``pool=None`` builds (and owns) the plan's
        pool.
    """
    if plan is not None:
        kernel = plan.kernel
        dispatch = plan.dispatch
        backend = plan.backend
        batch_size = plan.batch_size
        strict = plan.strict
        if checkpoint is None:
            checkpoint = plan.checkpoint
        if resume is None:
            resume = plan.resume
    _check_kernel(kernel)
    _check_dispatch(dispatch)
    backend = resolve_backend(backend)
    if cache is not None:
        if checkpoint is not None or resume is not None:
            raise SynthesisError(
                "cache= cannot be combined with checkpoint/resume: the tile "
                "store is the cache's own persistence"
            )
        if kernel != "intervals":
            raise SynthesisError(
                "the tile cache serves interval-kernel synthesis only"
            )
        if cache.n_persons != n_persons:
            raise SynthesisError(
                f"cache population {cache.n_persons} != requested {n_persons}"
            )
        if strict and cache.quarantined:
            # a non-strict cache silently skips damaged files; honoring
            # strict= here would return a network the caller believes is
            # complete when it is not
            raise SynthesisError(
                "strict=True but the cache quarantined damaged log "
                f"file(s): {', '.join(cache.quarantined)}"
            )
        report = SynthesisReport(
            n_workers=cache.pool.n_workers,
            batches=0,
            kernel="intervals",
            dispatch=cache.dispatch,
            # the cache computes tiles under its own backend setting
            backend=getattr(cache, "backend", backend),
            quarantined=list(cache.quarantined),
        )
        with start_span(
            "synthesize", attrs={"kernel": "intervals", "cache": True}
        ):
            with report.timings.time("cache_query"):
                network = cache.query_window(t0, t1)
        return network, report
    log_set = log_dir if isinstance(log_dir, LogSet) else LogSet(log_dir)
    own_pool = pool is None
    if pool is None:
        pool = plan.make_pool() if plan is not None else SerialPool()
    network: CollocationNetwork | None = None
    total_report = SynthesisReport(
        n_workers=pool.n_workers,
        batches=0,
        kernel=kernel,
        dispatch=dispatch,
        backend=backend,
    )

    digest = checkpoint_digest(log_set, n_persons, t0, t1, batch_size)
    checkpoint_dir = Path(checkpoint) if checkpoint is not None else None
    resume_dir = Path(resume) if resume is not None else None
    if resume_dir is not None and checkpoint_dir is None:
        checkpoint_dir = resume_dir
    batches_done = 0
    if resume_dir is not None:
        manifest = load_checkpoint_manifest(resume_dir)
        if manifest["digest"] != digest:
            raise CheckpointError(
                f"checkpoint in {resume_dir} was written for a different "
                "configuration (file list, window, population, or batch "
                "size changed); refusing to resume"
            )
        batches_done = int(manifest["batches_done"])
        if manifest["has_partial"]:
            partial = resume_dir / CHECKPOINT_PARTIAL
            if not partial.is_file():
                raise CheckpointError(
                    f"manifest in {resume_dir} references a partial matrix "
                    "but partial.npz is missing"
                )
            network = CollocationNetwork.load(partial)
        saved = manifest["report"]
        total_report.n_records = int(saved["n_records"])
        total_report.n_sliced_records = int(saved["n_sliced_records"])
        total_report.n_places = int(saved["n_places"])
        total_report.colloc_nnz_total = int(saved["colloc_nnz_total"])
        total_report.n_retries = int(saved["n_retries"])
        total_report.quarantined = list(saved["quarantined"])
        total_report.skipped_records = int(saved["skipped_records"])
        total_report.batches = batches_done
        total_report.resumed_batches = batches_done

    run_span = start_span(
        "synthesize",
        attrs={"kernel": kernel, "dispatch": dispatch, "backend": backend,
               "t0": t0, "t1": t1},
    )
    run_span.__enter__()
    try:
        for batch_index, batch in enumerate(log_set.batches(batch_size)):
            if batch_index < batches_done:
                continue
            if dispatch == "zero-copy":
                batch_net = _synthesize_batch_descriptors(
                    batch, n_persons, t0, t1, pool, kernel, backend, strict,
                    total_report,
                )
                if batch_net is not None:
                    network = (
                        batch_net if network is None else network + batch_net
                    )
                total_report.batches += 1
                if checkpoint_dir is not None:
                    with total_report.timings.time("checkpoint"):
                        _write_checkpoint(
                            checkpoint_dir,
                            digest,
                            batch_index + 1,
                            network,
                            total_report,
                        )
                continue
            parts = []
            with total_report.timings.time("load"):
                for path in batch:
                    if strict:
                        rec = LogReader(path).read_time_slice(t0, t1)
                    else:
                        rec, _reason = try_read_time_slice(path, t0, t1)
                        if rec is None:
                            total_report.quarantined.append(str(path))
                            total_report.skipped_records += (
                                _recoverable_records(path)
                            )
                            continue
                    if len(rec):
                        parts.append(rec)
            if parts:
                records = (
                    np.concatenate(parts) if len(parts) > 1 else parts[0]
                )
                batch_net, batch_report = synthesize_network(
                    records, n_persons, t0, t1, pool=pool, kernel=kernel,
                    backend=backend,
                )
                network = batch_net if network is None else network + batch_net
                total_report.n_records += batch_report.n_records
                total_report.n_sliced_records += batch_report.n_sliced_records
                total_report.n_places += batch_report.n_places
                total_report.colloc_nnz_total += batch_report.colloc_nnz_total
                _merge_balance(total_report, batch_report.balance)
                total_report.n_retries += batch_report.n_retries
                # merge (not add): the batch's stage clocks already
                # emitted through the probe when they were recorded
                total_report.timings.merge(batch_report.timings)
                merge_kernel_timings(
                    total_report.kernel_timings, batch_report.kernel_timings
                )
            total_report.batches += 1
            if checkpoint_dir is not None:
                with total_report.timings.time("checkpoint"):
                    _write_checkpoint(
                        checkpoint_dir,
                        digest,
                        batch_index + 1,
                        network,
                        total_report,
                    )
    finally:
        if own_pool:
            pool.close()
        run_span.set_attr("batches", total_report.batches)
        run_span.__exit__(*sys.exc_info())
    if network is None:
        network = CollocationNetwork(
            accumulate_adjacency([], n_persons), t0=t0, t1=t1
        )
    return network, total_report
