"""End-to-end synthesis orchestration (paper Section IV.A).

The stages map one-to-one onto the paper's:

1. *data loading* — read per-rank EVL files (root);
2. *collocation matrices creation* — slice the window, group records by
   place, map matrix construction over a worker pool;
3. *collocation matrix list partitioning* — LPT by nnz across workers;
4. *adjacency matrices creation* — each worker computes and sums its
   ``x·xᵀ`` share; the root reduces to one upper-triangular matrix.

Log files are processed in independent batches ("batches of 16 files at a
time"); batch networks are summed.  Batch independence relies on the
distributed model's place ownership: every record for a place lives in
exactly one rank's file, so a place's collocation matrix is never split
across batches.  ``validate_place_locality`` makes that precondition
checkable for logs of unknown provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
import numpy as np

from .._util import StageTimings
from ..errors import SynthesisError
from ..evlog.multifile import LogSet
from ..evlog.schema import LogRecordArray
from ..distrib.taskpool import SerialPool, WorkerPool
from .adjacency import accumulate_adjacency, sum_adjacency_list
from .balance import BalanceReport, balance_by_nnz
from .colloc import CollocationMatrix, collocation_matrix_for_place
from .network import CollocationNetwork
from .slicing import records_by_place, slice_records

__all__ = [
    "SynthesisReport",
    "synthesize_network",
    "synthesize_from_logs",
    "validate_place_locality",
]


@dataclass
class SynthesisReport:
    """Observability for one synthesis run."""

    n_records: int = 0
    n_sliced_records: int = 0
    n_places: int = 0
    n_workers: int = 1
    colloc_nnz_total: int = 0
    balance: BalanceReport | None = None
    timings: StageTimings = field(default_factory=StageTimings)
    batches: int = 1

    def summary(self) -> str:
        lines = [
            f"records          {self.n_records:>12,}",
            f"in slice         {self.n_sliced_records:>12,}",
            f"places           {self.n_places:>12,}",
            f"workers          {self.n_workers:>12,}",
            f"presence nnz     {self.colloc_nnz_total:>12,}",
            f"batches          {self.batches:>12,}",
        ]
        if self.balance is not None:
            lines.append(f"load imbalance   {self.balance.imbalance:>12.3f}")
        lines.append("--- timings ---")
        lines.append(self.timings.report())
        return "\n".join(lines)


def _matrices_task(
    chunk: tuple[list[tuple[int, LogRecordArray]], int, int],
) -> list[CollocationMatrix]:
    """Stage-2 worker: build collocation matrices for a chunk of places."""
    groups, t0, t1 = chunk
    return [
        collocation_matrix_for_place(place, records, t0, t1)
        for place, records in groups
    ]


def _adjacency_task(
    chunk: tuple[list[CollocationMatrix], int],
):
    """Stage-4 worker: sum ``x·xᵀ`` over its balanced matrix share."""
    matrices, n_persons = chunk
    return sum_adjacency_list(matrices, n_persons)


def _chunk_groups(
    groups: list[tuple[int, LogRecordArray]], n_chunks: int
) -> list[list[tuple[int, LogRecordArray]]]:
    """Split place groups into roughly record-balanced chunks, preserving
    a deterministic order."""
    if n_chunks <= 1 or len(groups) <= 1:
        return [groups]
    # simple greedy by record count, stable across runs
    sizes = np.array([len(rec) for _, rec in groups], dtype=np.int64)
    order = np.argsort(-sizes, kind="stable")
    loads = np.zeros(n_chunks, dtype=np.int64)
    chunks: list[list[tuple[int, LogRecordArray]]] = [[] for _ in range(n_chunks)]
    for i in order:
        b = int(np.argmin(loads))
        chunks[b].append(groups[int(i)])
        loads[b] += sizes[i]
    return [c for c in chunks if c]


def synthesize_network(
    records: LogRecordArray,
    n_persons: int,
    t0: int,
    t1: int,
    pool: WorkerPool | None = None,
) -> tuple[CollocationNetwork, SynthesisReport]:
    """Build the collocation network for window ``[t0, t1)`` from records.

    Parameters
    ----------
    records:
        Event-log records (any order, any provenance).
    n_persons:
        Population size (matrix dimension).
    t0, t1:
        Analysis window in absolute simulation hours.
    pool:
        Worker pool; default :class:`~repro.distrib.taskpool.SerialPool`.
    """
    if n_persons <= 0:
        raise SynthesisError("n_persons must be positive")
    own_pool = pool is None
    pool = pool or SerialPool()
    report = SynthesisReport(n_records=len(records), n_workers=pool.n_workers)
    timings = report.timings
    try:
        with timings.time("slice"):
            sliced = slice_records(records, t0, t1)
        report.n_sliced_records = len(sliced)

        with timings.time("group_by_place"):
            place_ids, groups = records_by_place(sliced)
            paired = list(zip((int(p) for p in place_ids), groups))
        report.n_places = len(paired)

        with timings.time("collocation_matrices"):
            chunks = _chunk_groups(paired, pool.n_workers * 4)
            results = pool.map(
                _matrices_task, [(chunk, t0, t1) for chunk in chunks]
            )
            matrices = [m for sub in results for m in sub]
        report.colloc_nnz_total = sum(m.nnz for m in matrices)

        with timings.time("balance"):
            shares, balance = balance_by_nnz(matrices, pool.n_workers)
        report.balance = balance

        with timings.time("adjacency"):
            partials = pool.map(
                _adjacency_task,
                [(share, n_persons) for share in shares if share],
            )

        with timings.time("reduce"):
            adjacency = accumulate_adjacency(partials, n_persons)
    finally:
        if own_pool:
            pool.close()
    return CollocationNetwork(adjacency, t0=t0, t1=t1), report


def validate_place_locality(log_set: LogSet, batch_size: int) -> bool:
    """Check that no place's records span more than one batch.

    Returns True when batch-independent processing is exact for this log
    directory (always true for logs written by the distributed model,
    whose ranks own disjoint place sets at any time — and places never
    change owner during a run).
    """
    seen: dict[int, int] = {}
    for batch_index, batch in enumerate(log_set.batches(batch_size)):
        places: set[int] = set()
        from ..evlog.reader import LogReader

        for path in batch:
            rec = LogReader(path).read_all()
            places.update(int(p) for p in np.unique(rec["place"]))
        for p in places:
            if p in seen and seen[p] != batch_index:
                return False
            seen[p] = batch_index
    return True


def synthesize_from_logs(
    log_dir: str | Path | LogSet,
    n_persons: int,
    t0: int,
    t1: int,
    batch_size: int = 16,
    pool: WorkerPool | None = None,
) -> tuple[CollocationNetwork, SynthesisReport]:
    """Synthesize the network from a directory of per-rank EVL files.

    Files are processed in independent batches of ``batch_size`` (the
    paper's job unit); per-batch networks are summed into the complete
    network.
    """
    log_set = log_dir if isinstance(log_dir, LogSet) else LogSet(log_dir)
    own_pool = pool is None
    pool = pool or SerialPool()
    network: CollocationNetwork | None = None
    total_report = SynthesisReport(n_workers=pool.n_workers, batches=0)
    try:
        from ..evlog.reader import LogReader

        for batch in log_set.batches(batch_size):
            parts = []
            with total_report.timings.time("load"):
                for path in batch:
                    rec = LogReader(path).read_time_slice(t0, t1)
                    if len(rec):
                        parts.append(rec)
            if not parts:
                total_report.batches += 1
                continue
            records = (
                np.concatenate(parts) if len(parts) > 1 else parts[0]
            )
            batch_net, batch_report = synthesize_network(
                records, n_persons, t0, t1, pool=pool
            )
            network = batch_net if network is None else network + batch_net
            total_report.batches += 1
            total_report.n_records += batch_report.n_records
            total_report.n_sliced_records += batch_report.n_sliced_records
            total_report.n_places += batch_report.n_places
            total_report.colloc_nnz_total += batch_report.colloc_nnz_total
            total_report.balance = batch_report.balance
            for name, secs in batch_report.timings.stages.items():
                total_report.timings.add(name, secs)
    finally:
        if own_pool:
            pool.close()
    if network is None:
        network = CollocationNetwork(
            accumulate_adjacency([], n_persons), t0=t0, t1=t1
        )
    return network, total_report
