"""Masked-SpGEMM backend: compiled pack build and adjacency product.

Two entry points, both returning ``None`` when the fast path does not
apply so callers fall through to the scipy/numpy reference:

:func:`build_pack_arrays`
    the compiled interval-pack build — packed-key value sorts in numpy
    (no ``argsort``, no ``np.unique`` anywhere) plus linear C scans for
    the boundary space, segment expansion, and canonical CSR assembly.
    Entry keys carry *global* person ids, so the sorted-unique person row
    map falls out of the same dedup scan that builds the CSR.  Produces
    bit-identical fields to :func:`repro.core.intervals.build_interval_pack`.
:func:`sum_shares_adjacency`
    the masked upper-triangular weighted SpGEMM over a worker's pack (or
    collocation-matrix) share.  Computes only the strict upper triangle
    of ``(Y·diag(w))·Yᵀ`` in local coordinates and writes every unit's
    triples straight into one shared pooled COO buffer — no per-part
    ``tocoo``/``astype``/``concatenate`` — then accumulates them into the
    global CSR via packed sort keys (one global value sort plus linear
    compiled scans) instead of a scipy round trip.

All scratch comes from the per-thread :class:`~.workspace.KernelWorkspace`;
steady state performs no scratch allocations.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .cext import load_cext
from .numba_backend import load_numba_kernels
from .workspace import get_workspace, kernel_stage

__all__ = [
    "build_pack_arrays",
    "masked_adjacency_triples",
    "sum_shares_adjacency",
]

#: int32 output coordinates bound every row/column index
_I32_MAX = 2**31


def _compiled_product():
    """``(csr_to_csc, masked_spgemm, pack_triples, keys_to_csr,
    fill_values)`` callables with the :mod:`.pyref` argument order, from
    the preferred available implementation, or None."""
    from . import compiled_impl

    impl = compiled_impl()
    if impl == "cext":
        k = load_cext()
        # the ctypes wrappers already take pyref's argument order
        return (
            k.csr_to_csc,
            k.masked_spgemm,
            k.pack_triples,
            k.keys_to_csr,
            k.fill_values,
        )
    if impl == "numba":
        spgemm_jit, csc_jit, pack_jit, k2c_jit, fill_jit = load_numba_kernels()
        return csc_jit, spgemm_jit, pack_jit, k2c_jit, fill_jit
    return None


# -- pack build --------------------------------------------------------------


def build_pack_arrays(
    start: np.ndarray,
    stop: np.ndarray,
    person: np.ndarray,
    place: np.ndarray,
    t0: int,
    t1: int,
) -> dict | None:
    """Compiled interval-pack build from clipped record columns.

    Inputs are contiguous int64 columns already clipped to ``[t0, t1]``.
    Returns the :class:`~repro.core.intervals.IntervalPack` field dict,
    or None when the fast path does not apply: no compiled extension,
    packed sort keys that would not fit 63 bits, person/column ids
    outside the packed-key ranges, or zero-length records (whose persons
    the reference keeps despite covering no segment) — the reference
    path handles all of those.
    """
    k = load_cext()
    if k is None:
        return None
    start = np.ascontiguousarray(start, dtype=np.int64)
    stop = np.ascontiguousarray(stop, dtype=np.int64)
    person = np.ascontiguousarray(person, dtype=np.int64)
    place = np.ascontiguousarray(place, dtype=np.int64)
    n = len(start)
    tbits = max(int(t1 - t0).bit_length(), 1)
    ibits = max(int(2 * n).bit_length(), 1)
    place_min, place_max, person_min, person_max, n_zero = k.col_stats(
        place, person, start, stop
    )
    pbits = place_max.bit_length() if n else 0
    if place_min < 0 or pbits + tbits + ibits > 63:
        return None
    if person_min < 0 or person_max >= 2**32:
        return None  # entry keys carry the person id in the high 32 bits
    if n_zero:
        # zero-length records cover no segment but the reference keeps
        # their persons in the row map — let it handle them
        return None
    ws = get_workspace()

    # boundary space: one packed-key value sort + two linear C scans
    # replace np.unique(..., return_inverse=True) + _boundary_space
    keys = ws.take("pb_keys", 2 * n, np.int64)
    k.pack_keys(place, start, stop, t0, tbits, ibits, keys)
    keys.sort()
    lo = ws.take("pb_lo", n, np.int64)
    hi = ws.take("pb_hi", n, np.int64)
    col_place = ws.take("pb_col_place", 2 * n, np.int64)
    col_start = ws.take("pb_col_start", 2 * n, np.int64)
    col_weight = ws.take("pb_col_weight", 2 * n, np.int64)
    place_ids = ws.take("pb_place_ids", n, np.int64)
    place_first = ws.take("pb_place_first", n + 1, np.int64)
    n_cols, n_places = k.boundary_scan(
        keys.view(np.uint64),
        n,
        tbits,
        ibits,
        lo,
        hi,
        col_place,
        col_start,
        col_weight,
        place_ids,
        place_first,
    )
    if n_cols >= _I32_MAX:
        return None

    indptr_buf = ws.take("pb_indptr", n + 1, np.int32)
    persons_buf = ws.take("pb_persons", max(n, 1), np.int64)
    col_counts = ws.take("pb_col_counts", n_cols + 1, np.int64)
    rbits = int(person_max).bit_length() if n else 0
    lbits = max(int(n_cols).bit_length(), 1)
    if rbits + 2 * lbits <= 63:
        # presence CSR straight from per-record column ranges: one
        # (person, lo, length) key per *record*, one value sort, then a
        # merge of each person's lo-ascending intervals — never
        # materializes (or sorts) the 3-4x larger per-segment expansion
        rkeys = keys[:n]  # boundary keys are spent; reuse their pool
        k.range_keys(n, person, lo, hi, lbits, rkeys)
        rkeys.sort()
        cols_buf = ws.take("pb_cols", max(4 * n, 1024), np.int32)
        nnz, n_local = k.ranges_to_csr(
            rkeys, n, lbits, n_cols,
            indptr_buf, cols_buf, persons_buf, col_counts, len(cols_buf),
        )
        if nnz < 0:
            nnz = -nnz
            if nnz >= _I32_MAX:
                return None
            cols_buf = ws.take("pb_cols", nnz, np.int32)
            nnz, n_local = k.ranges_to_csr(
                rkeys, n, lbits, n_cols,
                indptr_buf, cols_buf, persons_buf, col_counts, len(cols_buf),
            )
    else:
        # range keys overflow 63 bits: expand packed (person, col)
        # entries, sort, and dedup-scan them into the same CSR
        entries = ws.take("pb_entries", max(4 * n, 1024), np.uint64)
        total = k.expand_entries(lo, hi, person, entries)
        if total < 0:
            total = -total
            if total >= _I32_MAX:
                return None
            entries = ws.take("pb_entries", total, np.uint64)
            k.expand_entries(lo, hi, person, entries)
        if total >= _I32_MAX:
            return None
        entries = entries[:total]
        entries.sort()
        cols_buf = ws.take("pb_cols", max(total, 1), np.int32)
        nnz, n_local = k.entries_to_csr(
            entries, total, n_cols, indptr_buf, cols_buf, persons_buf,
            col_counts,
        )
    if nnz >= _I32_MAX:
        return None
    matrix = sp.csr_matrix(
        (
            np.ones(nnz, dtype=np.uint32),
            cols_buf[:nnz].copy(),
            indptr_buf[: n_local + 1].copy(),
        ),
        shape=(n_local, n_cols),
    )
    # the dedup scan emits sorted, duplicate-free indices
    matrix.has_canonical_format = True

    # per-place pairwise-work and person-hour stats, grouped exactly like
    # the reference: only places that own at least one column contribute
    # a reduceat segment
    first = place_first[:n_places]
    ends = np.empty(n_places, dtype=np.int64)
    ends[:-1] = first[1:]
    ends[-1] = n_cols
    has_cols = first < ends
    counts = col_counts[:n_cols]
    seg_starts = first[has_cols]
    place_work = np.add.reduceat(counts * counts, seg_starts) if n_cols else (
        np.empty(0, dtype=np.int64)
    )
    place_hours = (
        np.add.reduceat(counts * col_weight[:n_cols], seg_starts)
        if n_cols
        else np.empty(0, dtype=np.int64)
    )
    return {
        "places": place_ids[:n_places].copy(),
        "place_work": place_work,
        "place_hours": place_hours,
        "col_place": col_place[:n_cols].copy(),
        "col_start": col_start[:n_cols] + t0,
        "col_weight": col_weight[:n_cols].copy(),
        "persons": persons_buf[:n_local].copy(),
        "matrix": matrix,
    }


# -- adjacency product -------------------------------------------------------


class _TripleBuffer:
    """Shared pooled COO output (rows, cols int32; values int64) that
    packs append to at an offset; grows by copy only on overflow."""

    def __init__(self, ws, capacity: int) -> None:
        self._ws = ws
        self.n = 0
        self.rows = ws.take("spg_rows", capacity, np.int32)
        self.cols = ws.take("spg_cols", capacity, np.int32)
        self.vals = ws.take("spg_vals", capacity, np.int64)

    @property
    def capacity(self) -> int:
        return len(self.rows)

    def grow(self, needed: int) -> None:
        old_r, old_c, old_v, n = self.rows, self.cols, self.vals, self.n
        cap = max(needed, 2 * self.capacity)
        self.rows = self._ws.take("spg_rows", cap, np.int32)
        self.cols = self._ws.take("spg_cols", cap, np.int32)
        self.vals = self._ws.take("spg_vals", cap, np.int64)
        if n and self.rows.base is not old_r.base:
            self.rows[:n] = old_r[:n]
            self.cols[:n] = old_c[:n]
            self.vals[:n] = old_v[:n]


def masked_adjacency_triples(
    matrix: sp.csr_matrix,
    weights: np.ndarray,
    product,
    buf: _TripleBuffer,
) -> tuple[int, int]:
    """Append one unit's strict-upper triples to the shared buffer.

    Returns the ``(base, count)`` slice written (local coordinates).
    """
    csr_to_csc, spgemm = product[0], product[1]
    ws = buf._ws
    weights = np.ascontiguousarray(weights, dtype=np.int64)
    n_local, n_cols = matrix.shape
    nnz = matrix.nnz
    indptr = matrix.indptr
    indices = matrix.indices
    cp = ws.take("spg_cp", n_cols + 1, np.int64)
    ri = ws.take("spg_ri", max(nnz, 1), np.int32)
    qp = ws.take("spg_qp", max(nnz, 1), np.int64)
    csr_to_csc(n_local, n_cols, indptr, indices, cp, ri, qp)
    acc = ws.take("spg_acc", n_local, np.int64)
    mark = ws.take("spg_mark", n_local, np.int32)
    touch = ws.take("spg_touch", n_local, np.int32)
    base = buf.n
    while True:
        out = spgemm(
            n_local,
            indptr,
            indices,
            qp,
            cp,
            ri,
            weights,
            acc,
            mark,
            touch,
            buf.rows[base:],
            buf.cols[base:],
            buf.vals[base:],
            buf.capacity - base,
        )
        if out >= 0:
            buf.n = base + out
            return base, out
        buf.grow(base + (-out))


def sum_shares_adjacency(
    units: "list[tuple[sp.csr_matrix, np.ndarray, np.ndarray]]",
    n_persons: int,
) -> sp.csr_matrix | None:
    """Masked-backend worker reduction over ``(matrix, weights, persons)``
    units — the shared stage-4 core for both kernels.

    Every unit's strict-upper product lands in one pooled triple buffer;
    a compiled pass per unit packs its triples as global ``(row << 32 |
    col)`` sort keys (fusing the local→global gather), one global value
    sort plus a linear dedup scan emit the canonical CSR pattern, and a
    run-draining merge over the unsorted keys sums the values.  Returns
    None when no compiled implementation is available or the coordinates
    would not fit the int32 triple layout.
    """
    product = _compiled_product()
    if product is None:
        return None
    if n_persons >= _I32_MAX:
        return None
    for matrix, _weights, _persons in units:
        if (
            matrix.indptr.dtype != np.int32
            or matrix.indices.dtype != np.int32
        ):
            return None
    # output-size estimate: presence nnz tracks the upper-triple count
    # closely on real shares; undershooting only costs one counted retry
    # of a single unit, overshooting costs first-touch page faults on the
    # pooled buffers
    est = sum(m.nnz for m, _w, _p in units)
    if est >= _I32_MAX:
        return None
    ws = get_workspace()
    with kernel_stage("spgemm"):
        buf = _TripleBuffer(ws, max(est, 1024))
        slices = []
        for matrix, weights, persons in units:
            base, count = masked_adjacency_triples(matrix, weights, product, buf)
            slices.append((base, count, persons))
    with kernel_stage("accumulate"):
        total = buf.n
        pack_triples, keys_to_csr, fill_values = product[2], product[3], product[4]
        # fuse the local→global gather with the sort-key packing: one
        # compiled pass per run writes (global_row << 32 | global_col)
        # straight into the pooled key buffer
        keys = ws.take("acc_keys", max(total, 1), np.int64)
        for base, count, persons in slices:
            end = base + count
            pack_triples(
                count,
                buf.rows[base:end],
                buf.cols[base:end],
                persons,
                0 if len(persons) == n_persons else 1,
                keys[base:end],
            )
        # one global value sort interleaves every run into canonical
        # order; a linear dedup scan then emits the CSR pattern.  The
        # unsorted keys stay behind for the values pass — persons is
        # sorted ascending, so packing keeps each run's rows
        # non-decreasing, which the run-draining merge depends on.
        keys_sorted = ws.take("acc_keys_sorted", max(total, 1), np.int64)
        np.copyto(keys_sorted[:total], keys[:total])
        keys_sorted[:total].sort()
        indptr_buf = ws.take("acc_indptr", n_persons + 1, np.int32)
        cols_out = ws.take("acc_cols_out", max(total, 1), np.int32)
        nnz = keys_to_csr(keys_sorted, total, n_persons, indptr_buf, cols_out)
        run_ptr = np.empty(len(slices) + 1, dtype=np.int64)
        run_ptr[0] = 0
        for i, (base, count, _p) in enumerate(slices):
            run_ptr[i + 1] = base + count
        acc = ws.take("acc_acc", n_persons, np.int64)
        mark = ws.take("acc_mark", n_persons, np.int32)
        cursor = ws.take("acc_cursor", len(slices), np.int64)
        vals_out = ws.take("acc_vals_out", max(total, 1), np.int64)
        fill_values(
            len(slices),
            run_ptr,
            keys,
            buf.vals[:total],
            n_persons,
            indptr_buf,
            cols_out,
            acc,
            mark,
            cursor,
            vals_out,
        )
        out = sp.csr_matrix(
            (
                vals_out[:nnz].copy(),
                cols_out[:nnz].copy(),
                indptr_buf[: n_persons + 1].copy(),
            ),
            shape=(n_persons, n_persons),
        )
        # the accumulation emits sorted, duplicate-free indices; the flag
        # lets accumulate_adjacency keep a lone worker partial as-is
        out.has_canonical_format = True
    return out
