"""Build and bind the compiled kernel extension at first use.

The container/CI images this project targets ship a system C compiler
but deliberately no build-time python packages, so the extension is
compiled on demand: the embedded source (:mod:`._csrc`) is written next
to a content-addressed cache path, compiled with ``cc -O2 -shared
-fPIC``, and loaded through :mod:`ctypes`.  Every step degrades
gracefully — no compiler, a failing compile, or a failing smoke test
each just report "unavailable" and the callers fall through to numba or
the scipy/numpy reference path.

Environment knobs:

``REPRO_NO_CC=1``
    never compile or load the C extension (CI's pure-fallback leg).
``REPRO_KERNEL_CC``
    compiler executable to use (default: ``cc`` then ``gcc`` then
    ``clang``, first found on PATH).
``REPRO_KERNEL_CACHE``
    directory for the built shared object (default:
    ``$XDG_CACHE_HOME/repro/kernels`` or ``~/.cache/repro/kernels``).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from ._csrc import C_SOURCE, C_SOURCE_VERSION

__all__ = ["load_cext", "cext_available", "cext_error"]

_I64 = ctypes.POINTER(ctypes.c_int64)
_I32 = ctypes.POINTER(ctypes.c_int32)
_U64 = ctypes.POINTER(ctypes.c_uint64)

#: loaded library, or False when loading failed / was disabled; None
#: before the first attempt
_lib: "ctypes.CDLL | bool | None" = None
_error: str | None = None


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "kernels"


def _find_cc() -> str | None:
    env = os.environ.get("REPRO_KERNEL_CC")
    candidates = [env] if env else ["cc", "gcc", "clang"]
    for name in candidates:
        if name and shutil.which(name):
            return name
    return None


def _source_key(cc: str) -> str:
    blob = f"v{C_SOURCE_VERSION}|{cc}|{C_SOURCE}".encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _as_ptr(a: np.ndarray, typ) -> "ctypes.pointer":
    return a.ctypes.data_as(typ)


class CompiledKernels:
    """ctypes bindings over the built shared object, with array-aware
    wrappers so callers pass numpy arrays, not pointers."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        lib.rk_col_stats.restype = ctypes.c_int64
        lib.rk_pack_keys.restype = ctypes.c_int64
        lib.rk_boundary_scan.restype = ctypes.c_int64
        lib.rk_range_keys.restype = ctypes.c_int64
        lib.rk_ranges_to_csr.restype = ctypes.c_int64
        lib.rk_expand_entries.restype = ctypes.c_int64
        lib.rk_entries_to_csr.restype = ctypes.c_int64
        lib.rk_csr_to_csc.restype = ctypes.c_int64
        lib.rk_masked_spgemm.restype = ctypes.c_int64
        lib.rk_pack_triples.restype = ctypes.c_int64
        lib.rk_keys_to_csr.restype = ctypes.c_int64
        lib.rk_fill_values.restype = ctypes.c_int64

    def col_stats(
        self,
        place: np.ndarray,
        person: np.ndarray,
        start: np.ndarray,
        stop: np.ndarray,
    ) -> tuple[int, int, int, int, int]:
        """``(place_min, place_max, person_min, person_max,
        n_zero_length)`` in one fused pass."""
        out = np.zeros(5, dtype=np.int64)
        self._lib.rk_col_stats(
            ctypes.c_int64(len(place)),
            _as_ptr(place, _I64),
            _as_ptr(person, _I64),
            _as_ptr(start, _I64),
            _as_ptr(stop, _I64),
            _as_ptr(out, _I64),
        )
        return (
            int(out[0]),
            int(out[1]),
            int(out[2]),
            int(out[3]),
            int(out[4]),
        )

    def pack_keys(
        self,
        place: np.ndarray,
        start: np.ndarray,
        stop: np.ndarray,
        t0: int,
        tbits: int,
        ibits: int,
        keys: np.ndarray,
    ) -> None:
        self._lib.rk_pack_keys(
            ctypes.c_int64(len(place)),
            _as_ptr(place, _I64),
            _as_ptr(start, _I64),
            _as_ptr(stop, _I64),
            ctypes.c_int64(t0),
            ctypes.c_int32(tbits),
            ctypes.c_int32(ibits),
            _as_ptr(keys, _I64),
        )

    def boundary_scan(
        self,
        keys: np.ndarray,
        n_rec: int,
        tbits: int,
        ibits: int,
        lo: np.ndarray,
        hi: np.ndarray,
        col_place: np.ndarray,
        col_start: np.ndarray,
        col_weight: np.ndarray,
        place_ids: np.ndarray,
        place_first_col: np.ndarray,
    ) -> tuple[int, int]:
        counts = np.zeros(2, dtype=np.int64)
        self._lib.rk_boundary_scan(
            _as_ptr(keys, _U64),
            ctypes.c_int64(len(keys)),
            ctypes.c_int64(n_rec),
            ctypes.c_int32(tbits),
            ctypes.c_int32(ibits),
            _as_ptr(lo, _I64),
            _as_ptr(hi, _I64),
            _as_ptr(col_place, _I64),
            _as_ptr(col_start, _I64),
            _as_ptr(col_weight, _I64),
            _as_ptr(place_ids, _I64),
            _as_ptr(place_first_col, _I64),
            _as_ptr(counts, _I64),
        )
        return int(counts[0]), int(counts[1])

    def range_keys(
        self,
        n: int,
        person: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        lbits: int,
        keys: np.ndarray,
    ) -> None:
        self._lib.rk_range_keys(
            ctypes.c_int64(n),
            _as_ptr(person, _I64),
            _as_ptr(lo, _I64),
            _as_ptr(hi, _I64),
            ctypes.c_int32(lbits),
            _as_ptr(keys, _I64),
        )

    def ranges_to_csr(
        self,
        keys: np.ndarray,
        n: int,
        lbits: int,
        n_cols: int,
        indptr: np.ndarray,
        cols: np.ndarray,
        persons: np.ndarray,
        col_counts: np.ndarray,
        cap: int,
    ) -> tuple[int, int]:
        """``(nnz, n_rows)``; nnz is negative when it exceeded ``cap``
        (grow the cols buffer to ``-nnz`` and retry)."""
        counts = np.zeros(2, dtype=np.int64)
        rc = int(
            self._lib.rk_ranges_to_csr(
                _as_ptr(keys, _I64),
                ctypes.c_int64(n),
                ctypes.c_int32(lbits),
                ctypes.c_int64(n_cols),
                _as_ptr(indptr, _I32),
                _as_ptr(cols, _I32),
                _as_ptr(persons, _I64),
                _as_ptr(col_counts, _I64),
                ctypes.c_int64(cap),
                _as_ptr(counts, _I64),
            )
        )
        return (rc if rc < 0 else int(counts[0])), int(counts[1])

    def expand_entries(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        person: np.ndarray,
        out: np.ndarray,
    ) -> int:
        return int(
            self._lib.rk_expand_entries(
                _as_ptr(lo, _I64),
                _as_ptr(hi, _I64),
                _as_ptr(person, _I64),
                ctypes.c_int64(len(lo)),
                _as_ptr(out, _U64),
                ctypes.c_int64(len(out)),
            )
        )

    def entries_to_csr(
        self,
        keys: np.ndarray,
        n_dup: int,
        n_cols: int,
        indptr: np.ndarray,
        cols: np.ndarray,
        persons: np.ndarray,
        col_counts: np.ndarray,
    ) -> tuple[int, int]:
        counts = np.zeros(2, dtype=np.int64)
        self._lib.rk_entries_to_csr(
            _as_ptr(keys, _U64),
            ctypes.c_int64(n_dup),
            ctypes.c_int64(n_cols),
            _as_ptr(indptr, _I32),
            _as_ptr(cols, _I32),
            _as_ptr(persons, _I64),
            _as_ptr(col_counts, _I64),
            _as_ptr(counts, _I64),
        )
        return int(counts[0]), int(counts[1])

    def csr_to_csc(
        self,
        n_rows: int,
        n_cols: int,
        indptr: np.ndarray,
        cols: np.ndarray,
        cp: np.ndarray,
        ri: np.ndarray,
        qp: np.ndarray,
    ) -> int:
        return int(
            self._lib.rk_csr_to_csc(
                ctypes.c_int64(n_rows),
                ctypes.c_int64(n_cols),
                _as_ptr(indptr, _I32),
                _as_ptr(cols, _I32),
                _as_ptr(cp, _I64),
                _as_ptr(ri, _I32),
                _as_ptr(qp, _I64),
            )
        )

    def masked_spgemm(
        self,
        n_rows: int,
        indptr: np.ndarray,
        cols: np.ndarray,
        qp: np.ndarray,
        cp: np.ndarray,
        ri: np.ndarray,
        w: np.ndarray,
        acc: np.ndarray,
        mark: np.ndarray,
        touch: np.ndarray,
        out_r: np.ndarray,
        out_c: np.ndarray,
        out_v: np.ndarray,
        cap: int,
    ) -> int:
        return int(
            self._lib.rk_masked_spgemm(
                ctypes.c_int64(n_rows),
                _as_ptr(indptr, _I32),
                _as_ptr(cols, _I32),
                _as_ptr(qp, _I64),
                _as_ptr(cp, _I64),
                _as_ptr(ri, _I32),
                _as_ptr(w, _I64),
                _as_ptr(acc, _I64),
                _as_ptr(mark, _I32),
                _as_ptr(touch, _I32),
                _as_ptr(out_r, _I32),
                _as_ptr(out_c, _I32),
                _as_ptr(out_v, _I64),
                ctypes.c_int64(cap),
            )
        )

    def pack_triples(
        self,
        n: int,
        rows: np.ndarray,
        cols: np.ndarray,
        pmap: np.ndarray,
        use_map: int,
        keys: np.ndarray,
    ) -> None:
        self._lib.rk_pack_triples(
            ctypes.c_int64(n),
            _as_ptr(rows, _I32),
            _as_ptr(cols, _I32),
            _as_ptr(pmap, _I64),
            ctypes.c_int32(use_map),
            _as_ptr(keys, _I64),
        )

    def keys_to_csr(
        self,
        keys: np.ndarray,
        n_tr: int,
        n_rows: int,
        indptr: np.ndarray,
        cols_out: np.ndarray,
    ) -> int:
        return int(
            self._lib.rk_keys_to_csr(
                _as_ptr(keys, _I64),
                ctypes.c_int64(n_tr),
                ctypes.c_int64(n_rows),
                _as_ptr(indptr, _I32),
                _as_ptr(cols_out, _I32),
            )
        )

    def fill_values(
        self,
        n_runs: int,
        run_ptr: np.ndarray,
        keys: np.ndarray,
        vals: np.ndarray,
        n_rows: int,
        indptr: np.ndarray,
        cols_out: np.ndarray,
        acc: np.ndarray,
        mark: np.ndarray,
        cursor: np.ndarray,
        vals_out: np.ndarray,
    ) -> None:
        self._lib.rk_fill_values(
            ctypes.c_int64(n_runs),
            _as_ptr(run_ptr, _I64),
            _as_ptr(keys, _I64),
            _as_ptr(vals, _I64),
            ctypes.c_int64(n_rows),
            _as_ptr(indptr, _I32),
            _as_ptr(cols_out, _I32),
            _as_ptr(acc, _I64),
            _as_ptr(mark, _I32),
            _as_ptr(cursor, _I64),
            _as_ptr(vals_out, _I64),
        )


def _build(cc: str, target: Path) -> None:
    target.parent.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=target.parent) as tmp:
        src = Path(tmp) / "rk.c"
        out = Path(tmp) / "rk.so"
        src.write_text(C_SOURCE)
        subprocess.run(
            [cc, "-O3", "-shared", "-fPIC", "-o", str(out), str(src)],
            check=True,
            capture_output=True,
            timeout=120,
        )
        # atomic publish: concurrent builders race benignly, last wins
        os.replace(out, target)


def _smoke_test(kernels: CompiledKernels) -> None:
    """One tiny end-to-end product checked against the closed form.

    Two persons sharing one 3-hour segment must yield the single triple
    (0, 1, 3), through the transpose and the product.  Guards against a
    mis-built or ABI-skewed object before anything trusts it.
    """
    indptr = np.array([0, 1, 2], dtype=np.int32)
    cols = np.array([0, 0], dtype=np.int32)
    cp = np.empty(2, np.int64)
    ri = np.empty(2, np.int32)
    qp = np.empty(2, np.int64)
    kernels.csr_to_csc(2, 1, indptr, cols, cp, ri, qp)
    w = np.array([3], dtype=np.int64)
    acc = np.empty(2, np.int64)
    mark = np.empty(2, np.int32)
    touch = np.empty(2, np.int32)
    out_r = np.empty(4, np.int32)
    out_c = np.empty(4, np.int32)
    out_v = np.empty(4, np.int64)
    n = kernels.masked_spgemm(
        2, indptr, cols, qp, cp, ri, w, acc, mark, touch, out_r, out_c, out_v, 4
    )
    if n != 1 or out_r[0] != 0 or out_c[0] != 1 or out_v[0] != 3:
        raise RuntimeError("compiled kernel smoke test failed")


def load_cext() -> CompiledKernels | None:
    """The compiled kernels, building them on first call; None when
    unavailable (no compiler, build failure, or ``REPRO_NO_CC=1``)."""
    global _lib, _error
    if _lib is not None:
        return _lib or None
    if os.environ.get("REPRO_NO_CC"):
        _lib, _error = False, "disabled by REPRO_NO_CC"
        return None
    cc = _find_cc()
    if cc is None:
        _lib, _error = False, "no C compiler on PATH"
        return None
    target = _cache_dir() / f"rk-{_source_key(cc)}.so"
    try:
        if not target.is_file():
            _build(cc, target)
        kernels = CompiledKernels(ctypes.CDLL(str(target)))
        _smoke_test(kernels)
    except Exception as exc:  # missing headers, EPERM cache dir, ABI skew...
        _lib, _error = False, f"{type(exc).__name__}: {exc}"
        return None
    _lib = kernels
    _error = None
    return kernels


def cext_available() -> bool:
    """Whether the C extension built, loaded, and passed its smoke test."""
    return load_cext() is not None


def cext_error() -> str | None:
    """Why the extension is unavailable (None when it loaded fine)."""
    load_cext()
    return _error
