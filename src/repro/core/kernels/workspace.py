"""Pooled kernel workspaces and per-stage kernel timings.

The compiled kernels are deliberately allocation-free: every scratch
array (Gustavson accumulator, marker, touched-row list, derived-CSR
buffers, packed sort keys, output triple buffers) comes from a
:class:`KernelWorkspace` that is reused across packs and batches instead
of reallocated per place-group.  Workspaces are per-thread (the tile
cache runs kernels from executor threads) and grow geometrically, so a
steady-state synthesis run performs zero scratch allocations after the
first batch.

This module also keeps the per-stage kernel clocks (``pack_build``,
``spgemm``, ``accumulate``) that :class:`~repro.core.pipeline.SynthesisReport`
surfaces and ``repro synth --profile`` prints.  Collection is a handful
of ``perf_counter`` calls per task — cheap enough to stay always-on.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

import numpy as np

from ...obs import (
    TraceContext,
    capture_spans,
    get_collector,
    record_kernel_timings,
    start_span,
)

__all__ = [
    "KernelWorkspace",
    "get_workspace",
    "kernel_stage",
    "collect_kernel_timings",
    "collect_task_telemetry",
    "merge_kernel_timings",
    "absorb_task_telemetry",
    "task_span",
    "KERNEL_STAGES",
]

#: the attributable kernel stages, in pipeline order
KERNEL_STAGES = ("pack_build", "spgemm", "accumulate")


class KernelWorkspace:
    """A named pool of growable scratch arrays.

    ``take(name, size, dtype)`` returns a contiguous view of at least
    *size* elements, reusing (and geometrically growing) one buffer per
    name.  Contents are unspecified — kernels initialize what they read.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        #: buffers served without an allocation
        self.hits = 0
        #: buffers (re)allocated
        self.grows = 0

    def take(self, name: str, size: int, dtype) -> np.ndarray:
        size = int(size)
        buf = self._buffers.get(name)
        if buf is None or buf.size < size or buf.dtype != np.dtype(dtype):
            grown = max(size, buf.size * 2 if buf is not None else 0, 1024)
            buf = np.empty(grown, dtype=dtype)
            self._buffers[name] = buf
            self.grows += 1
        else:
            self.hits += 1
        return buf[:size]

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())

    def clear(self) -> None:
        self._buffers.clear()


_tls = threading.local()


def get_workspace() -> KernelWorkspace:
    """This thread's kernel workspace (created on first use)."""
    ws = getattr(_tls, "workspace", None)
    if ws is None:
        ws = _tls.workspace = KernelWorkspace()
    return ws


def _times() -> dict:
    t = getattr(_tls, "stage_times", None)
    if t is None:
        t = _tls.stage_times = {}
    return t


@contextmanager
def kernel_stage(name: str):
    """Accumulate wall time under a kernel stage for this thread."""
    t0 = time.perf_counter()
    try:
        yield
    finally:
        times = _times()
        times[name] = times.get(name, 0.0) + (time.perf_counter() - t0)


def collect_kernel_timings() -> dict[str, float]:
    """Drain this thread's accumulated kernel stage times.

    Worker tasks call this after building/multiplying and ship the dict
    back with their payload; the pipeline folds the dicts into the
    :class:`~repro.core.pipeline.SynthesisReport`.
    """
    times = _times()
    out = dict(times)
    times.clear()
    return out


def merge_kernel_timings(total: dict[str, float], part: dict[str, float] | None) -> None:
    """Fold one task's stage times into a running total, in place."""
    if not part:
        return
    for name, secs in part.items():
        total[name] = total.get(name, 0.0) + secs


@contextmanager
def task_span(name: str, ctx_wire: dict | None, attrs: dict | None = None):
    """Worker-side telemetry scope for a pool task.

    Opens a span parented to the wire context the coordinator shipped in
    the task args, and captures every span the task finishes into the
    yielded list (instead of the worker process's own collector, which
    would be lost).  With no context — tracing off at the root, or a
    call path that doesn't propagate — the scope is free and the list
    stays empty.
    """
    parent = TraceContext.from_wire(ctx_wire) if ctx_wire else None
    if parent is None:
        yield []
        return
    with capture_spans() as spans:
        with start_span(name, parent=parent, attrs=attrs):
            yield spans


def collect_task_telemetry(spans: list[dict] | None = None) -> dict:
    """Drain this thread's kernel timings plus any captured spans into
    the dict a worker task ships back with its payload."""
    return {"kernel": collect_kernel_timings(), "spans": spans or []}


def absorb_task_telemetry(total: dict[str, float], telemetry: dict | None) -> None:
    """Coordinator-side: fold one task's shipped telemetry into the run.

    Accepts either the rich :func:`collect_task_telemetry` form or a
    plain stage-times dict (the value-dispatch workers).  Kernel stage
    times merge into ``total`` and emit through the active probe —
    exactly once per task, so batch→total merges must keep using
    :func:`merge_kernel_timings` to avoid double counting.  Worker spans
    are absorbed into the process-wide collector, parent links intact.
    """
    if not telemetry:
        return
    if "kernel" in telemetry or "spans" in telemetry:
        times = telemetry.get("kernel")
        spans = telemetry.get("spans")
    else:
        times, spans = telemetry, None
    merge_kernel_timings(total, times)
    record_kernel_timings(times)
    if spans:
        get_collector().absorb(spans)
