"""C source for the compiled masked-SpGEMM kernel extension.

The source is embedded as a string so the package needs no build step and
no files beyond the python tree: :mod:`repro.core.kernels.cext` compiles
it once with the system C compiler into a cached shared object and binds
it through :mod:`ctypes`.  Everything here is plain C99 with no
dependencies — the arrays come in as raw pointers from numpy.

Functions (all linear passes or cache-sized loops; the only large sorts
happen in numpy, on packed 64-bit keys, between the scans):

``rk_col_stats``
    one fused pass over the four record columns computing every guard
    the pack build needs (id ranges, zero-length record count) — replaces
    four separate numpy reductions.
``rk_pack_keys``
    pack each record's two boundaries into sortable
    ``((place << tb | time) << ib | idx)`` keys in one pass (no numpy
    temporaries).
``rk_boundary_scan``
    walk the sorted packed boundary keys and emit the elementary-segment
    column space plus each record's ``[lo, hi)`` column range — the
    compiled twin of ``np.unique(..., return_inverse=True)`` +
    ``_boundary_space``.
``rk_range_keys``
    pack each record's ``(person, lo-column, range-length)`` into one
    sortable int64 key — one ``np.sort`` over *records* then replaces
    the 3-4x larger per-segment entry sort, and the length rides in the
    key so the emit scan never gathers through a record-index map.
``rk_ranges_to_csr``
    emit the canonical binary CSR straight from the sorted range keys by
    merging each person's (lo-ascending) column intervals — the column
    union of a person's records comes out sorted and duplicate-free
    without materializing the expanded entries at all.  Per-column
    presence counts fall out of range start/end deltas plus one prefix
    sum instead of an increment per emitted entry.
``rk_expand_entries``
    emit one packed ``(person << 32 | col)`` key per covered segment —
    the compiled twin of ``_expand_intervals``, keyed by *global* person
    id so no ``np.unique(person)`` pass is ever needed.  Fallback for
    packs whose ``(person, column, index)`` ranges overflow the 63-bit
    range keys.
``rk_entries_to_csr``
    dedup sorted entry keys into a canonical binary CSR (sorted indices,
    int32), deriving the sorted-unique person row map and per-column
    presence counts in the same pass.
``rk_csr_to_csc``
    counting transpose (rows ascending per column) that also records each
    CSR entry's position inside its CSC column, feeding the SpGEMM.
``rk_masked_spgemm``
    row-wise Gustavson product restricted to the strict upper triangle of
    ``(Y·diag(w))·Yᵀ`` in local coordinates, writing COO triples straight
    into caller-pooled output buffers.
``rk_pack_triples``
    rewrite a pack's local COO triples as packed ``(global_row << 32 |
    global_col)`` sort keys, fusing the local→global gather with the key
    packing.
``rk_keys_to_csr``
    dedup the globally sorted triple keys into the canonical CSR pattern
    in one linear scan.
``rk_fill_values``
    sum duplicate triple values into the canonical value array by
    row-merging the runs through a dense accumulator (every pack's
    triples arrive row-ascending, so no sort-by-row pass exists
    anywhere: the one ``np.sort`` over packed keys replaces it).

Together the last three are the compiled twin of
``coo_matrix(...).tocsr()`` over the concatenated parts.
"""

from __future__ import annotations

__all__ = ["C_SOURCE", "C_SOURCE_VERSION"]

#: bump when C_SOURCE changes incompatibly; part of the build-cache key
C_SOURCE_VERSION = 5

C_SOURCE = r"""
#include <stdint.h>
#include <string.h>

#define API __attribute__((visibility("default")))

/* One fused guard pass over the record columns.  out receives
   {place_min, place_max, person_min, person_max, n_zero_length}; a
   single linear scan replaces the separate numpy reductions over the
   same memory. */
API int64_t rk_col_stats(
    int64_t n,
    const int64_t *place, const int64_t *person,
    const int64_t *start, const int64_t *stop,
    int64_t *out) {
    int64_t place_min = INT64_MAX, place_max = -1;
    int64_t person_min = INT64_MAX, person_max = INT64_MIN;
    int64_t n_zero = 0;
    for (int64_t i = 0; i < n; i++) {
        if (place[i] < place_min) place_min = place[i];
        if (place[i] > place_max) place_max = place[i];
        if (person[i] < person_min) person_min = person[i];
        if (person[i] > person_max) person_max = person[i];
        if (start[i] >= stop[i]) n_zero++;
    }
    out[0] = place_min;
    out[1] = place_max;
    out[2] = person_min;
    out[3] = person_max;
    out[4] = n_zero;
    return 0;
}

/* Pack both boundaries of every record into sortable keys:
   keys[i]     = ((place << tbits | start - t0) << ibits) | i
   keys[n + i] = ((place << tbits | stop  - t0) << ibits) | (n + i)
   One pass, no intermediate arrays; the caller value-sorts the result. */
API int64_t rk_pack_keys(
    int64_t n,
    const int64_t *place, const int64_t *start, const int64_t *stop,
    int64_t t0, int32_t tbits, int32_t ibits,
    int64_t *keys) {
    for (int64_t i = 0; i < n; i++)
        keys[i] = (((place[i] << tbits) | (start[i] - t0)) << ibits) | i;
    for (int64_t i = 0; i < n; i++)
        keys[n + i] =
            (((place[i] << tbits) | (stop[i] - t0)) << ibits) | (n + i);
    return 0;
}

/* Walk sorted packed boundary keys and build the elementary-segment
   column space.

   keys[i] = ((place << tbits | time) << ibits) | original_index, sorted
   ascending; original indices < n are record starts, >= n are stops.
   Duplicate (place, time) pairs are adjacent.  Boundaries group by
   place; within a place every boundary except the last opens a segment
   (a column).  The column index of boundary b is its unique-serial minus
   the number of completed places before it (each contributes exactly one
   closing boundary).

   Outputs (caller allocates capacity 2n for the col_* arrays, n_rec+1
   for place_*): lo/hi per record (column ranges), col_place/col_start/
   col_weight per column, place_ids and place_first_col per place.
   out_counts receives {n_cols, n_places}.  Returns 0. */
API int64_t rk_boundary_scan(
    const uint64_t *keys, int64_t n2, int64_t n_rec,
    int32_t tbits, int32_t ibits,
    int64_t *lo, int64_t *hi,
    int64_t *col_place, int64_t *col_start, int64_t *col_weight,
    int64_t *place_ids, int64_t *place_first_col,
    int64_t *out_counts) {
    const uint64_t imask = (ibits >= 64) ? ~0ULL : ((1ULL << ibits) - 1ULL);
    const uint64_t tmask = (1ULL << tbits) - 1ULL;
    int64_t u = -1;        /* unique boundary serial */
    int64_t n_places = 0;  /* completed-or-open places */
    int64_t col = 0;       /* column index of the current boundary */
    int64_t prev_place = -1, prev_time = -1;
    for (int64_t i = 0; i < n2; i++) {
        uint64_t k = keys[i];
        int64_t idx = (int64_t)(k & imask);
        uint64_t pt = k >> ibits;
        int64_t t = (int64_t)(pt & tmask);
        int64_t p = (int64_t)(pt >> tbits);
        if (p != prev_place || t != prev_time) {
            u++;
            if (p != prev_place) {
                place_ids[n_places] = p;
                place_first_col[n_places] = u - n_places;
                n_places++;
            } else {
                /* same place: the previous boundary opens the segment
                   [prev_time, t) whose column is (u-1) - place_ordinal */
                int64_t c = u - n_places;
                col_place[c] = p;
                col_start[c] = prev_time;
                col_weight[c] = t - prev_time;
            }
            prev_place = p;
            prev_time = t;
        }
        col = u - (n_places - 1);
        if (idx < n_rec) lo[idx] = col;
        else             hi[idx - n_rec] = col;
    }
    out_counts[0] = (u + 1) - n_places;  /* columns = boundaries - closings */
    out_counts[1] = n_places;
    return 0;
}

/* Pack each record's (person, lo column, range length) into one
   sortable key: keys[r] = (person[r] << 2*lbits) | (lo[r] << lbits) |
   (hi[r] - lo[r]).  The caller guarantees person and two lbits-wide
   fields fit 63 bits together; sorting these n keys replaces sorting
   the ~3-4x larger per-segment entry expansion, and carrying the length
   instead of a record index spares the emit scan a random gather. */
API int64_t rk_range_keys(
    int64_t n, const int64_t *person, const int64_t *lo, const int64_t *hi,
    int32_t lbits, int64_t *keys) {
    for (int64_t r = 0; r < n; r++)
        keys[r] = (person[r] << (2 * lbits)) | (lo[r] << lbits)
                | (hi[r] - lo[r]);
    return 0;
}

/* Emit canonical binary CSR straight from the sorted range keys.  Each
   key decodes to (person, lo, len) and covers the half-open column
   range [lo, lo + len); within a person the keys arrive lo-ascending,
   so every previously processed range starts at or below the current
   lo, the person's covered set above lo is exactly [lo, cur_end), and
   overlapping ranges merge against that running exclusive end — each
   person's column union comes out sorted and duplicate-free with no
   per-segment entry array ever materialized.  persons receives the
   sorted-unique person ids.  col_counts (n_cols + 1 slots, zeroed
   here) receives per-column presence counts via range start/end deltas
   — an overlap charges a compensating delta over [lo, min(h, cur_end))
   — resolved by one prefix sum, instead of an increment per emitted
   entry.  indptr needs n+1 slots, persons n, cols capacity cap.
   out_counts receives {nnz, n_rows}.  Returns 0, or -nnz when nnz
   exceeds cap (the scan keeps counting without writing so the caller
   can grow the pooled buffer and retry). */
API int64_t rk_ranges_to_csr(
    const int64_t *keys, int64_t n, int32_t lbits, int64_t n_cols,
    int32_t *indptr, int32_t *cols, int64_t *persons, int64_t *col_counts,
    int64_t cap, int64_t *out_counts) {
    memset(col_counts, 0, (size_t)(n_cols + 1) * sizeof(int64_t));
    int64_t lmask = (((int64_t)1) << lbits) - 1;
    int64_t nnz = 0;
    int64_t n_rows = 0;
    int64_t prev_person = -1;
    int64_t cur_end = 0;  /* exclusive end of the row's last emitted run */
    indptr[0] = 0;
    for (int64_t t = 0; t < n; t++) {
        int64_t k = keys[t];
        int64_t person = k >> (2 * lbits);
        int64_t lo = (k >> lbits) & lmask;
        int64_t h = lo + (k & lmask);
        if (person != prev_person) {
            prev_person = person;
            persons[n_rows] = person;
            indptr[n_rows] = (int32_t)nnz;
            n_rows++;
            cur_end = 0;
        }
        col_counts[lo]++;
        col_counts[h]--;
        int64_t ov_end = h < cur_end ? h : cur_end;
        if (lo < ov_end) {  /* this person already covered [lo, ov_end) */
            col_counts[lo]--;
            col_counts[ov_end]++;
        }
        int64_t from = lo > cur_end ? lo : cur_end;
        if (h <= from) continue;  /* range fully inside an emitted run */
        if (nnz + (h - from) <= cap) {
            for (int64_t c = from; c < h; c++)
                cols[nnz++] = (int32_t)c;
        } else {
            nnz += h - from;  /* count on, write nothing: sizes the retry */
        }
        cur_end = h;
    }
    indptr[n_rows] = (int32_t)nnz;
    int64_t run = 0;
    for (int64_t c = 0; c < n_cols; c++) {
        run += col_counts[c];
        col_counts[c] = run;
    }
    out_counts[0] = nnz;
    out_counts[1] = n_rows;
    return (nnz > cap) ? -nnz : 0;
}

/* Emit one packed (person << 32 | col) entry key per segment a record
   covers, keyed by global person id (caller guarantees 0 <= person
   < 2^32).  Returns the total entry count, or -total when it exceeds cap
   (so the caller can grow the pooled buffer and retry). */
API int64_t rk_expand_entries(
    const int64_t *lo, const int64_t *hi, const int64_t *person,
    int64_t n_rec, uint64_t *out, int64_t cap) {
    int64_t total = 0;
    for (int64_t r = 0; r < n_rec; r++) total += hi[r] - lo[r];
    if (total > cap) return -total;
    int64_t k = 0;
    for (int64_t r = 0; r < n_rec; r++) {
        uint64_t p = ((uint64_t)person[r]) << 32;
        for (int64_t c = lo[r]; c < hi[r]; c++)
            out[k++] = p | (uint64_t)c;
    }
    return total;
}

/* Dedup sorted (person << 32 | col) entry keys into canonical binary CSR
   (indices ascending per row, int32), deriving the row space on the way:
   persons receives the sorted-unique person ids (every person covers at
   least one segment, so the keys visit each exactly where np.unique
   would).  col_counts (n_cols slots, zeroed here) receives per-column
   presence counts.  indptr needs n_rec+1 slots, persons n_rec, cols
   capacity n_dup.  out_counts receives {nnz, n_rows}.  Returns 0. */
API int64_t rk_entries_to_csr(
    const uint64_t *keys, int64_t n_dup, int64_t n_cols,
    int32_t *indptr, int32_t *cols, int64_t *persons, int64_t *col_counts,
    int64_t *out_counts) {
    memset(col_counts, 0, (size_t)n_cols * sizeof(int64_t));
    int64_t nnz = 0;
    int64_t n_rows = 0;
    uint64_t prev = ~0ULL;
    uint64_t prev_person = ~0ULL;
    indptr[0] = 0;
    for (int64_t i = 0; i < n_dup; i++) {
        uint64_t k = keys[i];
        if (k == prev) continue;
        prev = k;
        uint64_t p = k >> 32;
        if (p != prev_person) {
            prev_person = p;
            persons[n_rows] = (int64_t)p;
            indptr[n_rows] = (int32_t)nnz;
            n_rows++;
        }
        int64_t c = (int64_t)(uint32_t)k;
        cols[nnz++] = (int32_t)c;
        col_counts[c]++;
    }
    indptr[n_rows] = (int32_t)nnz;
    out_counts[0] = nnz;
    out_counts[1] = n_rows;
    return 0;
}

/* Counting transpose of a CSR pattern into CSC with rows ascending per
   column, recording each CSR entry's CSC position in qp (the suffix
   handle the SpGEMM needs).  cp has n_cols+1 slots; ri and qp capacity
   nnz. */
API int64_t rk_csr_to_csc(
    int64_t n_rows, int64_t n_cols,
    const int32_t *indptr, const int32_t *cols,
    int64_t *cp, int32_t *ri, int64_t *qp) {
    int64_t nnz = indptr[n_rows];
    memset(cp, 0, (size_t)(n_cols + 1) * sizeof(int64_t));
    for (int64_t p = 0; p < nnz; p++) cp[cols[p] + 1]++;
    for (int64_t c = 0; c < n_cols; c++) cp[c + 1] += cp[c];
    /* walk rows in order so each column receives its row indices
       ascending; cp temporarily holds write cursors */
    for (int64_t i = 0; i < n_rows; i++) {
        for (int64_t p = indptr[i]; p < indptr[i + 1]; p++) {
            int64_t q = cp[cols[p]]++;
            ri[q] = (int32_t)i;
            qp[p] = q;
        }
    }
    /* restore cp: cursors are now each column's end = next column's start */
    for (int64_t c = n_cols; c > 0; c--) cp[c] = cp[c - 1];
    cp[0] = 0;
    return nnz;
}

/* Masked upper-triangular weighted SpGEMM: the strict upper triangle of
   (Y diag(w) Y^T), emitted as COO triples in local coordinates (unsorted
   within a row; accumulation canonicalizes).

   Y comes in as its CSR pattern (indptr/cols) plus the CSC from
   rk_csr_to_csc (cp/ri ascending rows, qp mapping CSR entry -> CSC
   position).  Row-wise Gustavson over the upper pairs only: for each row
   i and each column c containing i, every later row j in c gains w[c]
   collocated hours with i — ascending rows per column make "later rows"
   the suffix starting right after qp[p].

   Workspaces (caller-pooled): acc int64[nr], mark int32[nr], touch
   int32[nr] (any contents).  Returns triples written, or -needed when
   cap is too small (keeps counting without writing so the caller can
   grow and retry). */
API int64_t rk_masked_spgemm(
    int64_t nr,
    const int32_t *indptr, const int32_t *cols, const int64_t *qp,
    const int64_t *cp, const int32_t *ri, const int64_t *w,
    int64_t *acc, int32_t *mark, int32_t *touch,
    int32_t *out_r, int32_t *out_c, int64_t *out_v, int64_t cap) {
    memset(mark, 0xFF, (size_t)nr * sizeof(int32_t));
    int64_t out_n = 0;
    for (int64_t i = 0; i < nr; i++) {
        int64_t nt = 0;
        for (int64_t p = indptr[i]; p < indptr[i + 1]; p++) {
            int64_t c = cols[p];
            int64_t wc = w[c];
            for (int64_t q = qp[p] + 1; q < cp[c + 1]; q++) {
                int32_t j = ri[q];
                if (mark[j] != (int32_t)i) {
                    mark[j] = (int32_t)i;
                    acc[j] = wc;
                    touch[nt++] = j;
                } else {
                    acc[j] += wc;
                }
            }
        }
        if (out_n + nt <= cap) {
            for (int64_t t = 0; t < nt; t++) {
                int32_t j = touch[t];
                out_r[out_n] = (int32_t)i;
                out_c[out_n] = j;
                out_v[out_n] = acc[j];
                out_n++;
            }
        } else {
            out_n += nt;  /* count on, write nothing: sizes the retry */
        }
    }
    return (out_n > cap) ? -out_n : out_n;
}

/* Rewrite one run's local COO triples as packed global sort keys:
   keys[t] = (global_row << 32) | global_col, with local ids mapped
   through pmap when use_map is nonzero (pmap must then cover every local
   id).  Fuses the local→global gather with the key packing — one pass,
   no intermediate row/col arrays. */
API int64_t rk_pack_triples(
    int64_t n, const int32_t *rows, const int32_t *cols,
    const int64_t *pmap, int32_t use_map, int64_t *keys) {
    if (use_map) {
        for (int64_t t = 0; t < n; t++)
            keys[t] = (pmap[rows[t]] << 32) | pmap[cols[t]];
    } else {
        for (int64_t t = 0; t < n; t++)
            keys[t] = (((int64_t)rows[t]) << 32) | (int64_t)cols[t];
    }
    return 0;
}

/* Dedup globally sorted (row << 32 | col) triple keys into the canonical
   CSR pattern: indptr int32[n_rows+1], cols_out int32 with capacity
   n_tr.  One linear scan — the sort already interleaved every run's
   triples into canonical order.  Returns the deduped nnz. */
API int64_t rk_keys_to_csr(
    const int64_t *keys, int64_t n_tr, int64_t n_rows,
    int32_t *indptr, int32_t *cols_out) {
    int64_t nnz = 0;
    int64_t row = 0;
    int64_t prev = -1;
    indptr[0] = 0;
    for (int64_t i = 0; i < n_tr; i++) {
        int64_t k = keys[i];
        if (k == prev) continue;
        prev = k;
        int64_t r = k >> 32;
        while (row < r) indptr[++row] = (int32_t)nnz;
        cols_out[nnz++] = (int32_t)(k & 0xFFFFFFFF);
    }
    while (row < n_rows) indptr[++row] = (int32_t)nnz;
    return nnz;
}

/* Sum duplicate triple values into the canonical CSR's value array.

   The unsorted keys come as n_runs concatenated runs (run_ptr
   boundaries, one run per pack) with rows NON-DECREASING within each
   run: the SpGEMM emits rows ascending and the pack map is sorted, so
   mapping preserves the order.  Walk the global rows once, draining
   every run's prefix for the current row into the dense accumulator
   (all reads sequential, the accumulator cache-resident), then emit the
   row's values in the canonical column order rk_keys_to_csr fixed.

   Scratch (caller-pooled, any contents): acc int64[n_rows], mark
   int32[n_rows], cursor int64[n_runs]. */
API int64_t rk_fill_values(
    int64_t n_runs, const int64_t *run_ptr,
    const int64_t *keys, const int64_t *vals,
    int64_t n_rows,
    const int32_t *indptr, const int32_t *cols_out,
    int64_t *acc, int32_t *mark, int64_t *cursor,
    int64_t *vals_out) {
    memset(mark, 0xFF, (size_t)n_rows * sizeof(int32_t));
    for (int64_t u = 0; u < n_runs; u++) cursor[u] = run_ptr[u];
    for (int64_t r = 0; r < n_rows; r++) {
        for (int64_t u = 0; u < n_runs; u++) {
            int64_t s = cursor[u];
            const int64_t e = run_ptr[u + 1];
            for (; s < e && (keys[s] >> 32) == r; s++) {
                int64_t c = keys[s] & 0xFFFFFFFF;
                if (mark[c] != (int32_t)r) {
                    mark[c] = (int32_t)r;
                    acc[c] = vals[s];
                } else {
                    acc[c] += vals[s];
                }
            }
            cursor[u] = s;
        }
        for (int64_t k = indptr[r]; k < indptr[r + 1]; k++)
            vals_out[k] = acc[cols_out[k]];
    }
    return 0;
}
"""
