"""Pure-python reference loops for the masked SpGEMM kernel.

These functions are the *algorithm of record* for the compiled backends:
the C extension (:mod:`.cext`) is a line-for-line port, and the numba
backend (:mod:`.numba_backend`) jits exactly these functions.  They use
only plain loops and array indexing — the numba-supported subset — so
the same code object is testable un-jitted on small inputs and
compilable when numba is installed.

Do not call these on production-sized data without numba: they exist for
correctness (tests exercise them against scipy) and for jitting, not for
interpreted speed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "masked_spgemm",
    "csr_to_csc",
    "pack_triples",
    "keys_to_csr",
    "fill_values",
]


def csr_to_csc(nr, nc, indptr, cols, cp, ri, qp):
    """Counting transpose of a CSR pattern into CSC (rows ascending per
    column), recording each CSR entry's CSC position in ``qp``.

    Outputs: ``cp`` int64[nc+1], ``ri`` int32[nnz], ``qp`` int64[nnz].
    """
    nnz = indptr[nr]
    for c in range(nc + 1):
        cp[c] = 0
    for p in range(nnz):
        cp[cols[p] + 1] += 1
    for c in range(nc):
        cp[c + 1] += cp[c]
    for i in range(nr):
        for p in range(indptr[i], indptr[i + 1]):
            c = cols[p]
            q = cp[c]
            cp[c] = q + 1
            ri[q] = i
            qp[p] = q
    for c in range(nc, 0, -1):
        cp[c] = cp[c - 1]
    cp[0] = 0
    return nnz


def masked_spgemm(
    nr, indptr, cols, qp, cp, ri, w, acc, mark, touch, out_r, out_c, out_v, cap
):
    """Strict-upper-triangle triples of ``(Y·diag(w))·Yᵀ``.

    Y comes in as its CSR pattern (``indptr``/``cols``) plus the CSC from
    :func:`csr_to_csc` (``cp``/``ri`` ascending rows, ``qp`` mapping CSR
    entry → CSC position).  Row-wise Gustavson restricted to upper pairs:
    rows are ascending within each CSC column, so for an entry of row
    ``i`` every later entry in the same column is a partner ``j > i`` —
    the suffix starting right after ``qp[p]``.  Returns the triple count,
    or ``-needed`` when ``cap`` is too small (counting continues without
    writing so the caller can size the retry).

    Workspaces (caller-provided, any contents): ``acc`` int64[nr],
    ``mark``/``touch`` int32[nr].
    """
    for i in range(nr):
        mark[i] = -1
    out_n = 0
    for i in range(nr):
        nt = 0
        for p in range(indptr[i], indptr[i + 1]):
            c = cols[p]
            wc = w[c]
            for q in range(qp[p] + 1, cp[c + 1]):
                j = ri[q]
                if mark[j] != i:
                    mark[j] = i
                    acc[j] = wc
                    touch[nt] = j
                    nt += 1
                else:
                    acc[j] += wc
        if out_n + nt <= cap:
            for t in range(nt):
                j = touch[t]
                out_r[out_n] = i
                out_c[out_n] = j
                out_v[out_n] = acc[j]
                out_n += 1
        else:
            out_n += nt  # count on, write nothing: sizes the retry
    if out_n > cap:
        return -out_n
    return out_n


def pack_triples(n, rows, cols, pmap, use_map, keys):
    """Rewrite one run's local COO triples as packed ``(global_row << 32
    | global_col)`` sort keys, mapping local ids through ``pmap`` when
    ``use_map`` is nonzero — the gather and the key packing fused into
    one pass.
    """
    if use_map:
        for t in range(n):
            keys[t] = (pmap[rows[t]] << 32) | pmap[cols[t]]
    else:
        # rows/cols are int32: widen before shifting
        for t in range(n):
            keys[t] = (np.int64(rows[t]) << 32) | np.int64(cols[t])
    return 0


def keys_to_csr(keys, n_tr, n_rows, indptr, cols_out):
    """Dedup *globally sorted* packed triple keys into the canonical CSR
    pattern (``indptr`` int32[n_rows+1], ``cols_out`` capacity n_tr) in
    one linear scan.  Returns the deduped nnz.
    """
    nnz = 0
    row = 0
    prev = -1
    indptr[0] = 0
    for i in range(n_tr):
        k = keys[i]
        if k == prev:
            continue
        prev = k
        r = k >> 32
        while row < r:
            row += 1
            indptr[row] = nnz
        cols_out[nnz] = k & 0xFFFFFFFF
        nnz += 1
    while row < n_rows:
        row += 1
        indptr[row] = nnz
    return nnz


def fill_values(
    n_runs,
    run_ptr,
    keys,
    vals,
    n_rows,
    indptr,
    cols_out,
    acc,
    mark,
    cursor,
    vals_out,
):
    """Sum duplicate triple values into the canonical CSR's value array.

    The *unsorted* keys come as ``n_runs`` concatenated runs (``run_ptr``
    boundaries, one run per pack) with rows non-decreasing within each
    run: the SpGEMM emits rows ascending and the pack map is sorted, so
    mapping preserves the order.  Walk the global rows once, draining
    every run's prefix for the current row into the dense accumulator,
    then emit the row's values in the canonical column order
    :func:`keys_to_csr` fixed.

    Scratch (caller-provided, any contents): ``acc`` int64[n_rows],
    ``mark`` int32[n_rows], ``cursor`` int64[n_runs].
    """
    for c in range(n_rows):
        mark[c] = -1
    for u in range(n_runs):
        cursor[u] = run_ptr[u]
    for r in range(n_rows):
        for u in range(n_runs):
            s = cursor[u]
            e = run_ptr[u + 1]
            while s < e and (keys[s] >> 32) == r:
                c = keys[s] & 0xFFFFFFFF
                if mark[c] != r:
                    mark[c] = r
                    acc[c] = vals[s]
                else:
                    acc[c] += vals[s]
                s += 1
            cursor[u] = s
        for k in range(indptr[r], indptr[r + 1]):
            vals_out[k] = acc[cols_out[k]]
    return 0
