"""Pluggable kernel backends for the collocation/adjacency hot path.

The ``backend=`` knob sits alongside the existing ``kernel=`` (dense
hours vs. intervals) and ``dispatch=`` (value vs. zero-copy) knobs and
selects *how the arithmetic runs*, never *what it computes* — every
backend is bit-identical, gated by the equivalence suite:

``scipy``
    the pure-python/scipy reference: full symmetric sparse product,
    upper triangle filtered afterwards.
``masked``
    masked upper-triangular SpGEMM — a row-wise Gustavson kernel that
    computes only the strict upper triangle of ``(Y·diag(w))·Yᵀ``
    directly in local coordinates (half the FLOPs), with preallocated
    pooled workspaces reused across packs and batches, plus a compiled
    interval-pack build.  Runs compiled: the self-built C extension
    (:mod:`.cext`, any system C compiler) or numba-jitted loops
    (:mod:`.numba_backend`, the ``[fast]`` extra) — whichever is
    available.  With neither, ``masked`` degrades to the scipy/numpy
    reference implementation, so it is always safe to request.
``auto`` (default)
    ``masked`` when a compiled implementation is available, else
    ``scipy``.

``REPRO_KERNEL_IMPL`` (``cext`` | ``numba`` | ``numpy``) pins the
masked-backend implementation — CI uses it to gate each implementation
explicitly; ``REPRO_NO_CC=1`` additionally forbids the C build.
"""

from __future__ import annotations

import os

from ...errors import SynthesisError
from .workspace import (
    KERNEL_STAGES,
    KernelWorkspace,
    absorb_task_telemetry,
    collect_kernel_timings,
    collect_task_telemetry,
    get_workspace,
    kernel_stage,
    merge_kernel_timings,
    task_span,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "check_backend",
    "resolve_backend",
    "compiled_impl",
    "backend_info",
    "KERNEL_STAGES",
    "KernelWorkspace",
    "absorb_task_telemetry",
    "collect_kernel_timings",
    "collect_task_telemetry",
    "get_workspace",
    "kernel_stage",
    "merge_kernel_timings",
    "task_span",
]

#: selectable kernel backends (``auto`` resolves to one of these)
BACKENDS = ("scipy", "masked")
DEFAULT_BACKEND = "auto"


def check_backend(backend: str) -> None:
    """Reject a backend name outside ``BACKENDS`` + ``"auto"``."""
    if backend not in BACKENDS and backend != "auto":
        raise SynthesisError(
            f"unknown backend {backend!r}; choose from "
            f"{BACKENDS + ('auto',)}"
        )


def compiled_impl() -> str | None:
    """The masked backend's compiled implementation: ``"cext"``,
    ``"numba"``, or None (pure fallback).  ``REPRO_KERNEL_IMPL`` pins
    one explicitly."""
    from .cext import cext_available
    from .numba_backend import numba_available

    forced = os.environ.get("REPRO_KERNEL_IMPL", "").strip().lower()
    if forced == "numpy":
        return None
    if forced == "cext":
        return "cext" if cext_available() else None
    if forced == "numba":
        return "numba" if numba_available() else None
    if cext_available():
        return "cext"
    if numba_available():
        return "numba"
    return None


def resolve_backend(backend: str | None = None) -> str:
    """Resolve a backend request (None/"auto" included) to a concrete
    backend name."""
    if backend is None:
        backend = DEFAULT_BACKEND
    check_backend(backend)
    if backend == "auto":
        return "masked" if compiled_impl() is not None else "scipy"
    return backend


def backend_info() -> dict:
    """What ``auto`` resolves to and why — surfaced by ``repro synth
    --profile`` and useful in bug reports."""
    from .cext import cext_error

    impl = compiled_impl()
    return {
        "default": resolve_backend(None),
        "compiled_impl": impl,
        "cext_error": cext_error(),
        "forced_impl": os.environ.get("REPRO_KERNEL_IMPL") or None,
    }
