"""Numba-jitted masked SpGEMM (the ``[fast]`` optional extra).

Jits the reference loops from :mod:`.pyref` verbatim — one algorithm,
three executables (C, numba, interpreted python).  Import is lazy and
failure-tolerant: without numba installed this module simply reports
"unavailable" and the backend resolver falls through to the C extension
or the scipy/numpy reference path.

``cache=True`` persists the compiled machine code next to numba's own
cache so only the first process ever pays the jit; ``nogil=True``
releases the GIL for the tile-cache's threaded executors.
"""

from __future__ import annotations

__all__ = ["load_numba_kernels", "numba_available"]

#: (masked_spgemm, csr_to_csc, pack_triples, keys_to_csr, fill_values)
#: jitted tuple, False when numba is missing or jitting failed, None
#: before the first attempt
_kernels: "tuple | bool | None" = None


def load_numba_kernels() -> "tuple | None":
    """The jitted ``(masked_spgemm, csr_to_csc, pack_triples,
    keys_to_csr, fill_values)`` tuple, or None."""
    global _kernels
    if _kernels is not None:
        return _kernels or None
    try:
        import numba

        from . import pyref

        jit = numba.njit(cache=True, nogil=True)
        _kernels = (
            jit(pyref.masked_spgemm),
            jit(pyref.csr_to_csc),
            jit(pyref.pack_triples),
            jit(pyref.keys_to_csr),
            jit(pyref.fill_values),
        )
    except Exception:
        _kernels = False
        return None
    return _kernels


def numba_available() -> bool:
    """Whether numba is installed and the reference loops jitted."""
    return load_numba_kernels() is not None
