"""Collocation network synthesis — the paper's primary contribution.

From event-log records to a person collocation network (paper Section IV):

1. **time slicing** (:mod:`repro.core.slicing`) — subset log records to the
   analysis window, clipping activity intervals;
2. **collocation matrices** (:mod:`repro.core.colloc`) — per place, a
   sparse binary ``p × t`` matrix *x* marking which person was present at
   which hour;
3. **load balancing** (:mod:`repro.core.balance`) — partition the matrix
   list across workers by nonzero count, "crucial to achieve even load
   balancing" because place sizes "range from a single individual to tens
   of thousands";
4. **adjacency matrices** (:mod:`repro.core.adjacency`) — per place,
   ``A_l = x·xᵀ``; the weighted network is ``A = Σ_l A_l``, stored upper
   triangular (the graph is undirected);
5. **pipeline** (:mod:`repro.core.pipeline`) — the orchestration, serial
   or over a :mod:`repro.distrib.taskpool` worker pool, with the paper's
   independent per-batch log-file processing;
6. **network** (:mod:`repro.core.network`) — the resulting
   :class:`~repro.core.network.CollocationNetwork` object consumed by
   :mod:`repro.analysis`.
"""

from .slicing import slice_records, clip_records, unique_places
from .colloc import CollocationMatrix, build_collocation_matrices, collocation_matrix_for_place
from .intervals import (
    IntervalPack,
    build_interval_pack,
    interval_pack_for_place,
    sum_pack_adjacency,
)
from .balance import balance_by_nnz, balance_by_work, BalanceReport
from .adjacency import place_adjacency, accumulate_adjacency, triu_symmetrize
from .network import CollocationNetwork
from .pipeline import (
    SynthesisReport,
    synthesize_network,
    synthesize_from_logs,
    checkpoint_digest,
    load_checkpoint_manifest,
)
from .plan import DEFAULT_PLAN, SynthesisPlan
from .streaming import StreamingSynthesizer, WeeklyNetworkSeries
from .tilecache import TileCache, TileCacheStats, query_window
from .bsp_pipeline import (
    BspSynthesisResult,
    synthesize_network_bsp,
    synthesize_from_logs_bsp,
)
from .layers import (
    synthesize_layers,
    synthesize_layers_from_logs,
    layer_caches,
    layer_records,
)

__all__ = [
    "slice_records",
    "clip_records",
    "unique_places",
    "CollocationMatrix",
    "build_collocation_matrices",
    "collocation_matrix_for_place",
    "IntervalPack",
    "build_interval_pack",
    "interval_pack_for_place",
    "sum_pack_adjacency",
    "balance_by_nnz",
    "balance_by_work",
    "BalanceReport",
    "place_adjacency",
    "accumulate_adjacency",
    "triu_symmetrize",
    "CollocationNetwork",
    "SynthesisPlan",
    "DEFAULT_PLAN",
    "SynthesisReport",
    "synthesize_network",
    "synthesize_from_logs",
    "checkpoint_digest",
    "load_checkpoint_manifest",
    "StreamingSynthesizer",
    "WeeklyNetworkSeries",
    "TileCache",
    "TileCacheStats",
    "query_window",
    "BspSynthesisResult",
    "synthesize_network_bsp",
    "synthesize_from_logs_bsp",
    "synthesize_layers",
    "synthesize_layers_from_logs",
    "layer_caches",
    "layer_records",
]
