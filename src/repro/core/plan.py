"""The synthesis planner: one object owning every synthesis knob.

Before this module, the same six knobs — collocation kernel, dispatch
mode, kernel backend, batch size, strictness, checkpoint policy — were
threaded as separate keyword arguments through ``pipeline.py``,
``bsp_pipeline.py``, ``streaming.py``, ``layers.py``, the tile cache,
the query service, and the CLI, each with its own defaulting.  A
:class:`SynthesisPlan` resolves and validates them once; every consumer
(single-process synthesis, streaming, layer caches, BSP, the sharded
path in :mod:`repro.distrib.shardsynth`, and the service) accepts a
``plan=`` and builds from it.

The plan is a frozen value object: deriving a variant goes through
:func:`dataclasses.replace` (or :meth:`SynthesisPlan.with_` sugar), so a
plan handed to a service or a shard cluster cannot be mutated behind its
back.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..errors import SynthesisError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..distrib.taskpool import RetryPolicy, WorkerPool
    from .network import CollocationNetwork
    from .pipeline import SynthesisReport
    from .tilecache import TileCache

__all__ = ["SynthesisPlan", "DEFAULT_PLAN"]

#: pool kinds :meth:`SynthesisPlan.make_pool` accepts
POOL_KINDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class SynthesisPlan:
    """Every knob of one synthesis configuration, resolved once.

    Attributes
    ----------
    kernel:
        Collocation kernel: ``"intervals"`` (default) or ``"dense-hours"``.
    dispatch:
        ``"value"`` pickles record arrays to workers; ``"zero-copy"``
        ships :class:`~repro.evlog.reader.SliceDescriptor` byte ranges.
    backend:
        Kernel backend (``None``/``"auto"`` resolves to the best
        available; ``"scipy"`` is the bit-identical reference).
    batch_size:
        Log files per independent batch.
    strict:
        ``True`` raises on the first damaged log file instead of
        quarantining it.
    checkpoint / resume:
        Per-batch checkpoint directories (see
        :func:`~repro.core.pipeline.synthesize_from_logs`).
    pool_kind / n_workers:
        Worker pool the plan builds on demand (``make_pool``); consumers
        that receive an explicit pool ignore these.
    tile_hours / cache_budget_nnz / cache_dir:
        Tile-cache sizing for :meth:`build_cache`.
    """

    kernel: str = "intervals"
    dispatch: str = "value"
    backend: str | None = None
    batch_size: int = 16
    strict: bool = False
    checkpoint: str | None = None
    resume: str | None = None
    pool_kind: str = "serial"
    n_workers: int | None = None
    tile_hours: int = 24
    cache_budget_nnz: int | None = None
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        # import here: pipeline imports nothing from this module, so the
        # validation helpers stay single-sourced without a cycle
        from .kernels import resolve_backend
        from .pipeline import _check_dispatch, _check_kernel

        _check_kernel(self.kernel)
        _check_dispatch(self.dispatch)
        if self.pool_kind not in POOL_KINDS:
            raise SynthesisError(
                f"unknown pool kind {self.pool_kind!r}; choose from {POOL_KINDS}"
            )
        if self.batch_size < 1:
            raise SynthesisError("batch_size must be >= 1")
        if self.tile_hours < 1:
            raise SynthesisError("tile_hours must be >= 1")
        # resolve eagerly so every consumer sees the same concrete backend
        object.__setattr__(self, "backend", resolve_backend(self.backend))

    def with_(self, **changes: Any) -> "SynthesisPlan":
        """A modified copy (``dataclasses.replace`` sugar)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------

    def make_pool(self, retry: "RetryPolicy | None" = None) -> "WorkerPool":
        """Build the worker pool this plan calls for."""
        from ..distrib.taskpool import make_pool

        return make_pool(self.pool_kind, self.n_workers, retry=retry)

    def build_cache(
        self,
        log_dir: str | Path,
        n_persons: int,
        place_mask: Any = None,
        cache_dir: str | Path | None = None,
        pool: "WorkerPool | None" = None,
    ) -> "TileCache":
        """Build a :class:`~repro.core.tilecache.TileCache` under this plan.

        ``cache_dir`` overrides the plan's own (shards persist tiles into
        per-shard subdirectories of one root).
        """
        from .tilecache import TileCache

        if self.kernel != "intervals":
            raise SynthesisError(
                "the tile cache serves interval-kernel synthesis only; "
                f"plan.kernel={self.kernel!r}"
            )
        return TileCache(
            log_dir,
            n_persons,
            tile_hours=self.tile_hours,
            budget_nnz=self.cache_budget_nnz,
            cache_dir=cache_dir if cache_dir is not None else self.cache_dir,
            pool=pool,
            dispatch=self.dispatch,
            strict=self.strict,
            place_mask=place_mask,
            backend=self.backend,
        )

    def synthesize(
        self,
        log_dir: str | Path,
        n_persons: int,
        t0: int,
        t1: int,
        pool: "WorkerPool | None" = None,
        cache: Any = None,
    ) -> "tuple[CollocationNetwork, SynthesisReport]":
        """Run :func:`~repro.core.pipeline.synthesize_from_logs` under
        this plan (``pool=None`` builds and owns the plan's pool)."""
        from .pipeline import synthesize_from_logs

        return synthesize_from_logs(
            log_dir, n_persons, t0, t1, pool=pool, cache=cache, plan=self
        )

    def describe(self) -> str:
        """One-line human summary (CLI + service logs)."""
        parts = [
            f"kernel={self.kernel}",
            f"dispatch={self.dispatch}",
            f"backend={self.backend}",
            f"batch={self.batch_size}",
            f"pool={self.pool_kind}",
        ]
        if self.n_workers:
            parts.append(f"workers={self.n_workers}")
        if self.strict:
            parts.append("strict")
        return " ".join(parts)


#: the stock plan: interval kernel, by-value dispatch, auto backend
DEFAULT_PLAN = SynthesisPlan()
