"""BSP (MPI-style) synthesis — the paper's Rmpi execution mode.

The task-pool pipeline (:mod:`repro.core.pipeline`) mirrors SNOW's
master/worker socket cluster; this module mirrors the other backend the
paper names: "For larger clusters the use of an MPI backend through the
Rmpi library allows for parallelization across a much larger number of
processes."

Here every stage is an explicit collective on a
:class:`~repro.distrib.simcluster.SimCluster`:

1. the root slices and groups records, then **scatters** per-place record
   groups across ranks (record-count balanced);
2. ranks build their collocation matrices locally;
3. ranks **allgather** per-matrix nnz, compute the LPT assignment
   redundantly, and **exchange matrices all-to-all** so each rank ends up
   with its nnz-balanced share — the paper's "collocation matrix list
   partitioning" step made visible as real communication;
4. ranks compute and sum their ``x·xᵀ`` share and the root **reduces**
   the partial adjacencies.

The output is bit-identical to the serial pipeline (tested), and the
returned traffic stats expose the communication cost of each stage —
something the paper's wall-clock numbers fold together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..distrib.comm import Communicator, TrafficStats
from ..distrib.simcluster import SimCluster
from ..errors import SynthesisError
from ..evlog.multifile import LogSet, try_read_time_slice
from ..evlog.schema import LogRecordArray
from .adjacency import accumulate_adjacency, sum_adjacency_list
from .balance import lpt_partition
from .colloc import CollocationMatrix, collocation_matrix_for_place
from .intervals import interval_pack_for_place, sum_pack_adjacency
from ..obs import get_probe, start_span
from .kernels import resolve_backend
from .network import CollocationNetwork
from .pipeline import _check_kernel, _chunk_groups
from .slicing import records_by_place, slice_records

__all__ = [
    "BspSynthesisResult",
    "synthesize_network_bsp",
    "synthesize_from_logs_bsp",
]


@dataclass
class BspSynthesisResult:
    """Network plus the run's communication profile."""

    network: CollocationNetwork
    traffic: TrafficStats
    n_ranks: int
    n_places: int
    matrices_moved: int  # matrices that changed rank during balancing
    #: batches processed (1 for the in-memory entry point)
    batches: int = 1
    #: damaged log files skipped by the from-logs entry point
    quarantined: list[str] = field(default_factory=list)


def synthesize_network_bsp(
    records: LogRecordArray,
    n_persons: int,
    t0: int,
    t1: int,
    n_ranks: int,
    kernel: str = "intervals",
    backend: str | None = None,
) -> BspSynthesisResult:
    """Synthesize the collocation network on a simulated MPI cluster.

    ``kernel`` selects the collocation unit each rank builds in stage 2 —
    per-place interval packs (default) or per-place dense-hour matrices —
    and the matching stage-3 balancing weight (pairwise work / presence
    nnz).  ``backend`` selects the stage-4 arithmetic (see
    :mod:`repro.core.kernels`); it is resolved once here so every rank
    runs the same concrete backend.  Output is bit-identical across
    kernels and backends and to the task-pool pipeline.
    """
    if n_persons <= 0:
        raise SynthesisError("n_persons must be positive")
    if n_ranks < 1:
        raise SynthesisError("need at least one rank")
    _check_kernel(kernel)
    backend = resolve_backend(backend)

    def rank_fn(comm: Communicator):
        rank = comm.rank
        # --- stage 1: root slices/groups and scatters place groups -------
        if rank == 0:
            sliced = slice_records(records, t0, t1)
            place_ids, groups = records_by_place(sliced)
            paired = list(zip((int(p) for p in place_ids), groups))
            chunks = _chunk_groups(paired, comm.size)
            # pad to one chunk per rank
            while len(chunks) < comm.size:
                chunks.append([])
            shipment: list = [chunks[r] for r in range(comm.size)]
        else:
            shipment = [None] * comm.size
        # root keeps chunk 0, ships the rest (alltoall from root's row)
        my_groups = comm.alltoall(shipment if rank == 0 else [None] * comm.size)[0]
        if my_groups is None:
            my_groups = []

        # --- stage 2: local collocation units ------------------------------
        if kernel == "intervals":
            matrices = [
                interval_pack_for_place(place, recs, t0, t1)
                for place, recs in my_groups
            ]
        else:
            matrices = [
                collocation_matrix_for_place(place, recs, t0, t1)
                for place, recs in my_groups
            ]

        # --- stage 3: work-balanced redistribution -------------------------
        local_nnz = np.array([m.work for m in matrices], dtype=np.int64)
        all_nnz = comm.allgather(local_nnz)
        owners = np.concatenate(
            [np.full(len(v), r, dtype=np.int64) for r, v in enumerate(all_nnz)]
        ) if any(len(v) for v in all_nnz) else np.empty(0, dtype=np.int64)
        flat_nnz = (
            np.concatenate(all_nnz)
            if any(len(v) for v in all_nnz)
            else np.empty(0, dtype=np.int64)
        )
        buckets, _ = lpt_partition(flat_nnz.tolist(), comm.size)
        dest = np.empty(len(flat_nnz), dtype=np.int64)
        for b, items in enumerate(buckets):
            for i in items:
                dest[i] = b
        # global index range owned by this rank
        offsets = np.concatenate(
            ([0], np.cumsum([len(v) for v in all_nnz]))
        )
        my_lo, my_hi = offsets[rank], offsets[rank + 1]
        moved = int(np.count_nonzero(dest[my_lo:my_hi] != rank))
        payloads: list[list | None] = [None] * comm.size
        for r in range(comm.size):
            ship = [
                matrices[g - my_lo]
                for g in range(my_lo, my_hi)
                if dest[g] == r
            ]
            payloads[r] = ship if ship else None
        received = comm.alltoall(payloads)
        my_share: list = []
        for part in received:
            if part:
                my_share.extend(part)

        # --- stage 4: adjacency + reduction --------------------------------
        if kernel == "intervals":
            partial = sum_pack_adjacency(my_share, n_persons, backend=backend)
        else:
            partial = sum_adjacency_list(my_share, n_persons, backend=backend)
        total = comm.reduce_with(partial, lambda a, b: a + b, root=0)
        return total, len(matrices), moved

    with start_span(
        "synthesize_bsp",
        attrs={"kernel": kernel, "backend": backend, "ranks": n_ranks},
    ) as span:
        cluster = SimCluster(n_ranks)
        result = cluster.run(rank_fn)
        span.set_attr("bytes_sent", result.total_traffic.bytes_sent)
    adjacency, n_places, _ = result.returns[0]
    total_moved = sum(r[2] for r in result.returns)
    total_places = sum(r[1] for r in result.returns)
    probe = get_probe()
    probe.count("bsp.runs")
    probe.count("bsp.bytes_sent", result.total_traffic.bytes_sent)
    probe.count("bsp.messages_sent", result.total_traffic.messages_sent)
    probe.count("bsp.matrices_moved", total_moved)
    network = CollocationNetwork(
        accumulate_adjacency([adjacency], n_persons), t0=t0, t1=t1
    )
    return BspSynthesisResult(
        network=network,
        traffic=result.total_traffic,
        n_ranks=n_ranks,
        n_places=total_places,
        matrices_moved=total_moved,
    )


def synthesize_from_logs_bsp(
    log_dir: "str | Path | LogSet",
    n_persons: int,
    t0: int,
    t1: int,
    n_ranks: int,
    batch_size: int = 16,
    strict: bool = False,
    kernel: str = "intervals",
    cache=None,
    backend: str | None = None,
    plan=None,
) -> BspSynthesisResult:
    """Batched from-logs synthesis on the simulated MPI cluster.

    Mirrors :func:`~repro.core.pipeline.synthesize_from_logs` — independent
    batches of ``batch_size`` files, per-batch networks summed — but runs
    each batch as a BSP job.  Damaged files are quarantined exactly as in
    the task-pool pipeline unless ``strict=True``.

    With a :class:`~repro.core.tilecache.TileCache`, the window is served
    from cached tiles (bit-identical, interval kernel only) and no cluster
    communication happens at all — the zero-traffic result shows what the
    cache saves over a full BSP re-synthesis.
    """
    from ..evlog.reader import LogReader

    if plan is not None:
        # the plan is authoritative for the synthesis knobs
        kernel = plan.kernel
        backend = plan.backend
        batch_size = plan.batch_size
        strict = plan.strict
    if cache is not None:
        if kernel != "intervals":
            raise SynthesisError(
                "the tile cache serves interval-kernel synthesis only"
            )
        if cache.n_persons != n_persons:
            raise SynthesisError(
                f"cache population {cache.n_persons} != requested {n_persons}"
            )
        return BspSynthesisResult(
            network=cache.query_window(t0, t1),
            traffic=TrafficStats(),
            n_ranks=n_ranks,
            n_places=0,
            matrices_moved=0,
            batches=0,
            quarantined=list(cache.quarantined),
        )

    log_set = log_dir if isinstance(log_dir, LogSet) else LogSet(log_dir)
    network: CollocationNetwork | None = None
    traffic = TrafficStats()
    quarantined: list[str] = []
    n_places = 0
    moved = 0
    batches = 0
    for batch in log_set.batches(batch_size):
        parts = []
        for path in batch:
            if strict:
                rec = LogReader(path).read_time_slice(t0, t1)
            else:
                rec, _reason = try_read_time_slice(path, t0, t1)
                if rec is None:
                    quarantined.append(str(path))
                    continue
            if len(rec):
                parts.append(rec)
        batches += 1
        if not parts:
            continue
        records = np.concatenate(parts) if len(parts) > 1 else parts[0]
        result = synthesize_network_bsp(
            records, n_persons, t0, t1, n_ranks, kernel=kernel, backend=backend
        )
        network = (
            result.network if network is None else network + result.network
        )
        traffic = traffic.merged([result.traffic])
        n_places += result.n_places
        moved += result.matrices_moved
    if network is None:
        network = CollocationNetwork(
            accumulate_adjacency([], n_persons), t0=t0, t1=t1
        )
    return BspSynthesisResult(
        network=network,
        traffic=traffic,
        n_ranks=n_ranks,
        n_places=n_places,
        matrices_moved=moved,
        batches=batches,
        quarantined=quarantined,
    )
