"""Streaming multi-week synthesis and temporal network series.

The paper builds the complete network by processing log files and time
intervals sequentially: "The process for generating a collocation network
from the simulation log file is applied to the log files sequentially such
that a number of adjacency matrices for each log file and for each time
interval are created.  To generate the complete network across multiple
log files, the adjacency matrices are simply summed."

:class:`StreamingSynthesizer` runs that loop with bounded memory (one
week's records at a time via the chunk index), producing a
:class:`WeeklyNetworkSeries` — per-interval networks plus the temporal
statistics they enable: edge persistence between consecutive weeks and
edge recurrence (how many weeks a pair keeps meeting), which separate the
stable social core (household, school, work) from incidental venue
contacts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..config import HOURS_PER_WEEK
from ..errors import SynthesisError
from ..evlog.multifile import LogSet
from ..distrib.taskpool import WorkerPool
from ..obs import start_span
from .adjacency import accumulate_adjacency
from .network import CollocationNetwork
from .pipeline import synthesize_from_logs

__all__ = ["WeeklyNetworkSeries", "StreamingSynthesizer"]


@dataclass
class WeeklyNetworkSeries:
    """Per-interval collocation networks over a simulation."""

    networks: list[CollocationNetwork]
    interval_hours: int
    #: tile cache the series was synthesized through, when one was used —
    #: lets :meth:`total` reduce O(log W) cached tiles instead of summing
    #: per-interval matrices
    cache: "object | None" = None

    def __post_init__(self) -> None:
        if not self.networks:
            raise SynthesisError("series needs at least one interval")
        n = self.networks[0].n_persons
        if any(net.n_persons != n for net in self.networks):
            raise SynthesisError("intervals cover different populations")

    @property
    def n_intervals(self) -> int:
        return len(self.networks)

    @property
    def n_persons(self) -> int:
        return self.networks[0].n_persons

    def total(self) -> CollocationNetwork:
        """The complete summed network ("adjacency matrices simply summed").

        With a tile cache attached the full span is answered as one cached
        window query (O(log W) tile reduction); otherwise all interval
        adjacencies are merged in a single pre-sized accumulation — one
        COO concatenation + ``tocsr`` — instead of growing a running sum
        pairwise.  Both paths produce the identical canonical matrix.
        """
        t0 = min(net.t0 for net in self.networks)
        t1 = max(net.t1 for net in self.networks)
        if self.cache is not None:
            return self.cache.query_window(t0, t1)
        adjacency = accumulate_adjacency(
            [net.adjacency for net in self.networks], self.n_persons
        )
        return CollocationNetwork(adjacency, t0=t0, t1=t1)

    def _binary(self, index: int) -> sp.csr_matrix:
        a = self.networks[index].adjacency.copy()
        a.data = np.ones_like(a.data)
        return a

    def edge_persistence(self) -> np.ndarray:
        """Fraction of interval-w edges that recur in interval w+1.

        High persistence = a stable social core; the venue fringe churns.
        """
        if self.n_intervals < 2:
            return np.empty(0, dtype=np.float64)
        out = np.empty(self.n_intervals - 1, dtype=np.float64)
        prev = self._binary(0)
        for w in range(1, self.n_intervals):
            cur = self._binary(w)
            both = prev.multiply(cur).nnz
            out[w - 1] = both / prev.nnz if prev.nnz else 0.0
            prev = cur
        return out

    def edge_recurrence(self) -> tuple[np.ndarray, np.ndarray]:
        """``(weeks, pair_counts)``: how many pairs met in exactly *w*
        intervals (w ≥ 1)."""
        acc = self._binary(0)
        for w in range(1, self.n_intervals):
            acc = acc + self._binary(w)
        counts = np.bincount(
            acc.data.astype(np.int64), minlength=self.n_intervals + 1
        )[1:]
        weeks = np.arange(1, self.n_intervals + 1)
        keep = counts > 0
        return weeks[keep], counts[keep]

    def interval_edge_counts(self) -> np.ndarray:
        return np.array([net.n_edges for net in self.networks], dtype=np.int64)


class StreamingSynthesizer:
    """Bounded-memory multi-interval synthesis from per-rank logs."""

    def __init__(
        self,
        n_persons: int,
        interval_hours: int = HOURS_PER_WEEK,
        batch_size: int = 16,
        pool: WorkerPool | None = None,
        kernel: str = "intervals",
        dispatch: str = "value",
        cache=None,
        backend: str | None = None,
        plan=None,
    ) -> None:
        """``cache`` is an optional
        :class:`~repro.core.tilecache.TileCache` over the log directory:
        each interval becomes a cached tile query instead of a per-interval
        record re-read, and the cache is attached to the returned series so
        :meth:`WeeklyNetworkSeries.total` reduces tiles too."""
        if plan is not None:
            # the plan is authoritative for the synthesis knobs
            kernel = plan.kernel
            dispatch = plan.dispatch
            backend = plan.backend
            batch_size = plan.batch_size
        if interval_hours <= 0:
            raise SynthesisError("interval_hours must be positive")
        if cache is not None and cache.n_persons != n_persons:
            raise SynthesisError(
                f"cache population {cache.n_persons} != requested {n_persons}"
            )
        self.n_persons = n_persons
        self.interval_hours = interval_hours
        self.batch_size = batch_size
        self.pool = pool
        self.kernel = kernel
        self.dispatch = dispatch
        self.cache = cache
        self.backend = backend

    def process(
        self, log_set: LogSet | str, n_intervals: int
    ) -> WeeklyNetworkSeries:
        """Synthesize one network per interval ``[w·H, (w+1)·H)``."""
        if n_intervals < 1:
            raise SynthesisError("need at least one interval")
        logs = log_set if isinstance(log_set, LogSet) else LogSet(log_set)
        networks = []
        with start_span(
            "stream", attrs={"intervals": n_intervals, "kernel": self.kernel}
        ):
            for w in range(n_intervals):
                t0 = w * self.interval_hours
                t1 = t0 + self.interval_hours
                with start_span("interval", attrs={"t0": t0, "t1": t1}):
                    if self.cache is not None:
                        net = self.cache.query_window(t0, t1)
                    else:
                        net, _ = synthesize_from_logs(
                            logs,
                            self.n_persons,
                            t0,
                            t1,
                            batch_size=self.batch_size,
                            pool=self.pool,
                            kernel=self.kernel,
                            dispatch=self.dispatch,
                            backend=self.backend,
                        )
                networks.append(net)
        return WeeklyNetworkSeries(
            networks=networks,
            interval_hours=self.interval_hours,
            cache=self.cache,
        )
