"""Time slicing of log record tables.

"The process of creating the collocation matrices requires first
sub-setting the table into time slices, e.g. one week, based on the start
and stop times of the log entries."  The R pipeline used data.table binary
search; the numpy equivalent is boolean masking plus interval clipping,
which is similarly "extremely fast (seconds) ... even on tables with
millions of rows".
"""

from __future__ import annotations

import numpy as np

from ..errors import SynthesisError
from ..evlog.schema import LOG_DTYPE, LogRecordArray

__all__ = ["slice_records", "clip_records", "unique_places", "records_by_place"]


def slice_records(records: LogRecordArray, t0: int, t1: int) -> LogRecordArray:
    """Records whose interval ``[start, stop)`` intersects ``[t0, t1)``.

    Returns a copy with intervals **clipped** to the window, so downstream
    collocation counting never credits hours outside the slice.
    """
    if t1 <= t0:
        raise SynthesisError(f"empty time slice [{t0}, {t1})")
    records = np.asarray(records, dtype=LOG_DTYPE)
    mask = (records["start"] < t1) & (records["stop"] > t0)
    return clip_records(records[mask], t0, t1)


def clip_records(records: LogRecordArray, t0: int, t1: int) -> LogRecordArray:
    """Clip record intervals to ``[t0, t1)`` (records must all intersect)."""
    out = records.copy()
    np.maximum(out["start"], t0, out=out["start"])
    np.minimum(out["stop"], t1, out=out["stop"])
    if np.any(out["stop"] <= out["start"]):
        raise SynthesisError("clip produced an empty interval; slice first")
    return out


def unique_places(records: LogRecordArray) -> np.ndarray:
    """Sorted unique place ids in a record table ("a list of place IDs that
    occur in the time slice")."""
    return np.unique(np.asarray(records, dtype=LOG_DTYPE)["place"])


def records_by_place(
    records: LogRecordArray,
) -> tuple[np.ndarray, list[LogRecordArray]]:
    """Group records by place id.

    Returns ``(place_ids, groups)`` where ``groups[i]`` holds all records
    at ``place_ids[i]``.  One argsort, no per-place scans — the vectorized
    version of each worker "retriev[ing] log entries corresponding to each
    ID".
    """
    records = np.asarray(records, dtype=LOG_DTYPE)
    order = np.argsort(records["place"], kind="stable")
    sorted_rec = records[order]
    places = sorted_rec["place"]
    if len(places) == 0:
        return np.empty(0, dtype=np.uint32), []
    change = np.flatnonzero(places[1:] != places[:-1]) + 1
    starts = np.concatenate(([0], change, [len(places)]))
    place_ids = places[starts[:-1]]
    groups = [
        sorted_rec[starts[i] : starts[i + 1]] for i in range(len(place_ids))
    ]
    return place_ids, groups
