"""Per-place sparse collocation matrices.

"The sparse collocation matrix x is created by additively processing log
entries in a simulation output file and filling in values of 1 for the
times a person is doing an activity at the location. ... The elements of x
are simply binary values that indicate when each person row index was
present for each column time index."

One deliberate deviation from the paper's description: the paper indexes x
by *all* p persons; we index rows by the (sorted, unique) persons actually
present at the place and keep the global ids alongside.  ``x·xᵀ`` is
identical after mapping local rows back to global ids, and per-place work
becomes O(participants), not O(population) — the same optimization a sparse
matrix library performs internally on empty rows, made explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..errors import SynthesisError
from ..evlog.schema import LOG_DTYPE, LogRecordArray
from .slicing import records_by_place

__all__ = [
    "CollocationMatrix",
    "collocation_matrix_for_place",
    "build_collocation_matrices",
    "merge_collocations",
]


@dataclass
class CollocationMatrix:
    """Sparse presence matrix for one place over a time slice.

    Attributes
    ----------
    place:
        the place id.
    persons:
        sorted unique global person ids present (the local→global row map).
    matrix:
        CSR boolean ``(len(persons), t1 - t0)``; entry ``(i, h)`` set when
        ``persons[i]`` was at the place during slice hour ``h``.
    t0, t1:
        the absolute-time slice this matrix covers.
    """

    place: int
    persons: np.ndarray
    matrix: sp.csr_matrix
    t0: int
    t1: int

    @property
    def nnz(self) -> int:
        """Person-hours of presence."""
        return int(self.matrix.nnz)

    @property
    def person_hours(self) -> int:
        """Alias of :attr:`nnz` under its physical meaning — shared
        vocabulary with :class:`~repro.core.intervals.IntervalPack`."""
        return int(self.matrix.nnz)

    @property
    def work(self) -> int:
        """Estimated pairwise-product work: ``sum(per-hour presence²)``.

        ``x·xᵀ`` touches ``c_h²`` index pairs for each hour column with
        ``c_h`` present persons, so this — not presence nnz — is what LPT
        balancing should equalize across workers.
        """
        counts = np.bincount(self.matrix.indices, minlength=self.matrix.shape[1])
        counts = counts.astype(np.int64)
        return int((counts * counts).sum())

    @property
    def n_persons(self) -> int:
        return len(self.persons)

    @property
    def n_hours(self) -> int:
        return self.matrix.shape[1]


def _expand_intervals(
    starts: np.ndarray, stops: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Expand ``[start, stop)`` intervals into (record_row, hour) pairs.

    Vectorized run-length expansion: no Python loop over records.
    """
    lengths = (stops - starts).astype(np.int64)
    total = int(lengths.sum())
    rows = np.repeat(np.arange(len(starts)), lengths)
    offsets = np.arange(total) - np.repeat(
        np.cumsum(lengths) - lengths, lengths
    )
    hours = np.repeat(starts.astype(np.int64), lengths) + offsets
    return rows, hours


def collocation_matrix_for_place(
    place: int, records: LogRecordArray, t0: int, t1: int
) -> CollocationMatrix:
    """Build the collocation matrix *x* for one place from its records.

    Records must already be sliced/clipped to ``[t0, t1)`` and all belong
    to *place*.
    """
    records = np.asarray(records, dtype=LOG_DTYPE)
    if len(records) == 0:
        raise SynthesisError(f"no records for place {place}")
    if (records["place"] != place).any():
        raise SynthesisError(f"records contain foreign places (expected {place})")
    starts = records["start"].astype(np.int64)
    stops = records["stop"].astype(np.int64)
    if starts.min() < t0 or stops.max() > t1:
        raise SynthesisError("records extend outside the slice; clip first")

    persons = records["person"]
    unique_persons, local = np.unique(persons, return_inverse=True)
    rec_rows, hours = _expand_intervals(starts, stops)
    row_idx = local[rec_rows]
    col_idx = hours - t0
    data = np.ones(len(row_idx), dtype=np.uint32)
    x = sp.coo_matrix(
        (data, (row_idx, col_idx)),
        shape=(len(unique_persons), t1 - t0),
    ).tocsr()
    # a person logged twice for the same (place, hour) must still count once
    x.data[:] = 1
    return CollocationMatrix(
        place=int(place), persons=unique_persons, matrix=x, t0=t0, t1=t1
    )


def merge_collocations(mats: list[CollocationMatrix]) -> CollocationMatrix:
    """Union-merge matrices for the *same* place and window.

    Used by zero-copy dispatch when one place's records were split across
    per-file tasks: presence is binary, so the union of the partial
    matrices is bit-for-bit what a single build from the concatenated
    records would produce.
    """
    if not mats:
        raise SynthesisError("cannot merge zero collocation matrices")
    if len(mats) == 1:
        return mats[0]
    first = mats[0]
    if any(
        m.place != first.place or m.t0 != first.t0 or m.t1 != first.t1
        for m in mats
    ):
        raise SynthesisError("cannot merge collocation matrices across places/windows")
    # fast path: identical (already sorted) person rosters need no re-sort
    # or row remap — the union pattern is a binarized matrix sum, which is
    # canonical CSR and therefore bit-identical to the rebuild below
    if all(
        len(m.persons) == len(first.persons)
        and np.array_equal(m.persons, first.persons)
        for m in mats[1:]
    ):
        x = mats[0].matrix
        for m in mats[1:]:
            x = x + m.matrix
        x = x.astype(np.uint32)
        x.data[:] = 1
        return CollocationMatrix(
            place=first.place,
            persons=first.persons,
            matrix=x,
            t0=first.t0,
            t1=first.t1,
        )
    persons = np.unique(np.concatenate([m.persons for m in mats]))
    rows, cols = [], []
    for m in mats:
        coo = m.matrix.tocoo()
        rows.append(np.searchsorted(persons, m.persons)[coo.row])
        cols.append(coo.col)
    x = sp.coo_matrix(
        (
            np.ones(sum(len(r) for r in rows), dtype=np.uint32),
            (np.concatenate(rows), np.concatenate(cols)),
        ),
        shape=(len(persons), first.t1 - first.t0),
    ).tocsr()
    x.data[:] = 1
    return CollocationMatrix(
        place=first.place, persons=persons, matrix=x, t0=first.t0, t1=first.t1
    )


def build_collocation_matrices(
    records: LogRecordArray, t0: int, t1: int
) -> list[CollocationMatrix]:
    """Group sliced records by place and build every place's matrix."""
    place_ids, groups = records_by_place(records)
    return [
        collocation_matrix_for_place(int(pid), grp, t0, t1)
        for pid, grp in zip(place_ids, groups)
    ]
