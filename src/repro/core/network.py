"""The collocation network object.

Wraps the final sparse upper-triangular adjacency matrix: "the resulting
sparse triangular p × p adjacency matrix fully defines the collocation
network structure with the nonzero elements representing the amount of
time each person was collocated with each other person during the selected
time slice."
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import scipy.sparse as sp

from ..errors import AnalysisError, SynthesisError
from .adjacency import triu_symmetrize

__all__ = ["CollocationNetwork"]


class CollocationNetwork:
    """A person collocation network for one time slice.

    Parameters
    ----------
    adjacency:
        strict upper-triangular CSR, ``(n_persons, n_persons)``, int
        weights = collocated hours.
    t0, t1:
        the absolute simulation-hour window the network covers.
    """

    def __init__(self, adjacency: sp.spmatrix, t0: int = 0, t1: int = 0) -> None:
        adj = adjacency.tocsr()
        if adj.shape[0] != adj.shape[1]:
            raise SynthesisError("adjacency must be square")
        coo = adj.tocoo()
        if np.any(coo.row >= coo.col):
            raise SynthesisError("adjacency must be strictly upper triangular")
        adj.eliminate_zeros()
        self.adjacency = adj
        self.t0 = t0
        self.t1 = t1
        self._symmetric: sp.csr_matrix | None = None

    # -- basic shape -----------------------------------------------------------

    @property
    def n_persons(self) -> int:
        """Matrix dimension (all persons, connected or not — the paper
        counts all 2.9 M persons as vertices)."""
        return self.adjacency.shape[0]

    @property
    def n_edges(self) -> int:
        """Distinct collocated pairs (the paper's 830,328,649 at scale)."""
        return int(self.adjacency.nnz)

    @property
    def total_weight(self) -> int:
        """Total collocated person-pair hours."""
        return int(self.adjacency.data.sum())

    @property
    def memory_bytes(self) -> int:
        """In-memory footprint of the sparse matrix (data + indices)."""
        a = self.adjacency
        return int(a.data.nbytes + a.indices.nbytes + a.indptr.nbytes)

    def symmetric(self) -> sp.csr_matrix:
        """Full symmetric adjacency (cached)."""
        if self._symmetric is None:
            self._symmetric = triu_symmetrize(self.adjacency)
        return self._symmetric

    # -- combination -------------------------------------------------------------

    def __add__(self, other: "CollocationNetwork") -> "CollocationNetwork":
        """Sum two slices' networks ("to generate the complete network
        across multiple log files, the adjacency matrices are simply
        summed")."""
        if self.n_persons != other.n_persons:
            raise SynthesisError("cannot add networks over different populations")
        return CollocationNetwork(
            (self.adjacency + other.adjacency).tocsr(),
            t0=min(self.t0, other.t0),
            t1=max(self.t1, other.t1),
        )

    # -- queries -------------------------------------------------------------------

    def degrees(self) -> np.ndarray:
        """Unweighted vertex degree per person (int64)."""
        sym = self.symmetric()
        return np.diff(sym.indptr).astype(np.int64)

    def weighted_degrees(self) -> np.ndarray:
        """Total collocated hours per person (vertex strength)."""
        sym = self.symmetric()
        return np.asarray(sym.sum(axis=1)).ravel().astype(np.int64)

    def neighbors(self, person: int) -> np.ndarray:
        """Adjacent person ids."""
        if not 0 <= person < self.n_persons:
            raise AnalysisError(f"person {person} outside population")
        sym = self.symmetric()
        return sym.indices[sym.indptr[person] : sym.indptr[person + 1]].astype(
            np.int64
        )

    def edge_weight(self, i: int, j: int) -> int:
        """Collocated hours between persons *i* and *j* (0 if unconnected)."""
        if i == j:
            return 0
        a, b = (i, j) if i < j else (j, i)
        return int(self.adjacency[a, b])

    def subgraph(self, persons: np.ndarray) -> tuple[sp.csr_matrix, np.ndarray]:
        """Induced subgraph on a person set.

        Returns ``(sym_matrix, sorted_persons)`` — the symmetric adjacency
        restricted to (and re-indexed by) the given persons.
        """
        persons = np.unique(np.asarray(persons, dtype=np.int64))
        if persons.size and (persons[0] < 0 or persons[-1] >= self.n_persons):
            raise AnalysisError("subgraph persons outside population")
        sym = self.symmetric()
        sub = sym[persons][:, persons].tocsr()
        return sub, persons

    # -- interop ---------------------------------------------------------------------

    def to_networkx(self, max_edges: int = 5_000_000):
        """Convert to a weighted undirected ``networkx.Graph``.

        Guarded by ``max_edges``: "it is not practical nor likely useful"
        to materialize the full object graph at scale.
        """
        import networkx as nx

        if self.n_edges > max_edges:
            raise AnalysisError(
                f"network has {self.n_edges} edges; raise max_edges "
                f"({max_edges}) to force conversion"
            )
        coo = self.adjacency.tocoo()
        g = nx.Graph()
        g.add_nodes_from(range(self.n_persons))
        g.add_weighted_edges_from(
            zip(coo.row.tolist(), coo.col.tolist(), coo.data.tolist())
        )
        return g

    # -- persistence ------------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Persist to ``.npz`` (CSR triple + window metadata)."""
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(path.suffix + ".npz")
        a = self.adjacency
        np.savez_compressed(
            path,
            data=a.data,
            indices=a.indices,
            indptr=a.indptr,
            shape=np.array(a.shape, dtype=np.int64),
            window=np.array([self.t0, self.t1], dtype=np.int64),
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "CollocationNetwork":
        with np.load(path) as z:
            adj = sp.csr_matrix(
                (z["data"], z["indices"], z["indptr"]),
                shape=tuple(z["shape"]),
            )
            t0, t1 = (int(v) for v in z["window"])
        return cls(adj, t0=t0, t1=t1)

    def __repr__(self) -> str:
        return (
            f"CollocationNetwork(n_persons={self.n_persons}, "
            f"n_edges={self.n_edges}, window=[{self.t0}, {self.t1}))"
        )
