"""nnz-based load balancing of collocation matrix lists.

Paper Section IV.A.3: "The lists of collocation matrices returned from the
workers are combined into a single list for the purpose of evenly
partitioning the list according to the number of nonzero elements in each
collocation matrix.  This step is crucial to achieve even load balancing
... Without this balancing step, some workers would sit idle while others
would be working for extended periods of time due to the variance in the
number of collocated persons at different locations, which can range from
a single individual to tens of thousands of individuals."

The partitioner is LPT (longest processing time first): sort items by
weight descending, always hand the next item to the least-loaded worker.
LPT guarantees ``max_load ≤ mean_load + max_item`` (and ≤ 4/3 OPT), which
the property tests assert.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence, TypeVar

import numpy as np

from ..errors import PartitionError

__all__ = ["BalanceReport", "balance_by_nnz", "balance_by_work", "lpt_partition"]

T = TypeVar("T")


@dataclass
class BalanceReport:
    """Achieved load distribution of a balanced partition."""

    loads: np.ndarray  # weight per worker
    max_item: int

    @property
    def max_load(self) -> int:
        return int(self.loads.max()) if len(self.loads) else 0

    @property
    def mean_load(self) -> float:
        return float(self.loads.mean()) if len(self.loads) else 0.0

    @property
    def imbalance(self) -> float:
        """max/mean ratio; 1.0 is perfect.

        Defined as 1.0 whenever the ratio is meaningless: no buckets,
        zero total load (every bucket got only empty places), or a
        non-finite mean from NaN weights.  Ratio gates must never trip
        on a degenerate partition.
        """
        mean = self.mean_load
        if not np.isfinite(mean) or mean <= 0:
            return 1.0
        return self.max_load / mean


def lpt_partition(
    weights: Sequence[int], n_buckets: int
) -> tuple[list[list[int]], BalanceReport]:
    """LPT-partition item indices by weight into ``n_buckets``.

    Returns ``(buckets, report)`` where ``buckets[b]`` lists item indices
    for bucket *b*.
    """
    if n_buckets < 1:
        raise PartitionError("n_buckets must be >= 1")
    w = np.asarray(weights, dtype=np.int64)
    if np.any(w < 0):
        raise PartitionError("weights must be non-negative")
    order = np.argsort(-w, kind="stable")
    buckets: list[list[int]] = [[] for _ in range(n_buckets)]
    heap = [(0, b) for b in range(n_buckets)]  # (load, bucket)
    heapq.heapify(heap)
    for item in order:
        load, b = heapq.heappop(heap)
        buckets[b].append(int(item))
        heapq.heappush(heap, (load + int(w[item]), b))
    loads = np.zeros(n_buckets, dtype=np.int64)
    for b, items in enumerate(buckets):
        loads[b] = w[items].sum() if items else 0
    return buckets, BalanceReport(
        loads=loads, max_item=int(w.max()) if len(w) else 0
    )


def balance_by_nnz(
    matrices: Sequence[T], n_workers: int, nnz: Sequence[int] | None = None
) -> tuple[list[list[T]], BalanceReport]:
    """Partition collocation matrices across workers, balanced by nnz.

    ``matrices`` may be any objects exposing ``.nnz`` (or pass explicit
    ``nnz`` weights).  Returns per-worker lists plus the achieved
    :class:`BalanceReport`.
    """
    weights = (
        [int(m.nnz) for m in matrices]  # type: ignore[attr-defined]
        if nnz is None
        else list(nnz)
    )
    if len(weights) != len(matrices):
        raise PartitionError("nnz weights must align with matrices")
    buckets, report = lpt_partition(weights, n_workers)
    grouped = [[matrices[i] for i in bucket] for bucket in buckets]
    return grouped, report


def balance_by_work(
    matrices: Sequence[T], n_workers: int
) -> tuple[list[list[T]], BalanceReport]:
    """Partition by estimated pairwise-product work instead of presence nnz.

    ``x·xᵀ`` costs ``Σ_h c_h²`` index pairs (``c_h`` = persons present in
    column *h*), so presence nnz under-weights crowded places: a place with
    1000 persons for one hour has the same nnz as 1000 places with one
    loner each, but 10⁶× the product work.  Items must expose ``.work``
    (both :class:`~repro.core.colloc.CollocationMatrix` and
    :class:`~repro.core.intervals.IntervalPack` do).
    """
    return balance_by_nnz(
        matrices,
        n_workers,
        nnz=[int(m.work) for m in matrices],  # type: ignore[attr-defined]
    )
