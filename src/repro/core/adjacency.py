"""Adjacency matrix computation: ``A_l = x·xᵀ`` and accumulation.

"The multiplication x·xᵀ sums all of the times each person collocates with
every other person" at a place; the network adjacency is the sum over
places, "stored as a sparse triangular matrix which provides significant
memory and processing time savings compared to using a full, dense
matrix."

Matrices are accumulated in **global person coordinates** as upper
triangular CSR (row < col), weights = collocated hours; the diagonal
(self-collocation) is dropped.  The per-place product runs in *local*
coordinates (participants only) and is mapped back to global ids, so the
cost of a place scales with its participants, not the population.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from ..errors import SynthesisError
from .colloc import CollocationMatrix
from .kernels import kernel_stage, resolve_backend

__all__ = [
    "place_adjacency",
    "accumulate_adjacency",
    "sum_adjacency_list",
    "triu_symmetrize",
    "empty_adjacency",
]


def place_adjacency(colloc: CollocationMatrix, n_persons: int) -> sp.coo_matrix:
    """``A_l = x·xᵀ`` for one place, in global person coordinates.

    Returns a strict upper-triangular COO matrix of shape ``(n_persons,
    n_persons)``; entry ``(i, j)`` counts the hours persons *i* and *j*
    were simultaneously at the place.  The diagonal (hours the person was
    simply present) is discarded.
    """
    if colloc.persons.size and int(colloc.persons.max()) >= n_persons:
        raise SynthesisError("collocation matrix references person outside population")
    x = colloc.matrix
    # The full symmetric product is unavoidable: scipy's csr_matmat has no
    # triangular-only mode (cf. its `tril`/`triu`, which filter *after* the
    # product), so the lower half is computed either way.  What we can
    # avoid is touching it again afterwards: mask in local coordinates
    # first, then gather global ids for the surviving (upper) half only —
    # local persons are sorted ascending, so local row < col iff global
    # row < col.
    local = (x @ x.T).tocoo()  # local person × local person, hour counts
    keep = local.row < local.col
    data = local.data[keep].astype(np.int64)
    if len(colloc.persons) == n_persons:
        # identity person map: the matrix covers the whole population, so
        # local coordinates already are global — skip the gather
        rows, cols = local.row[keep], local.col[keep]
    else:
        g = colloc.persons.astype(np.int64)
        rows, cols = g[local.row[keep]], g[local.col[keep]]
    return sp.coo_matrix((data, (rows, cols)), shape=(n_persons, n_persons))


def empty_adjacency(n_persons: int) -> sp.csr_matrix:
    """All-zero upper-triangular adjacency."""
    return sp.csr_matrix((n_persons, n_persons), dtype=np.int64)


def accumulate_adjacency(
    parts: Iterable[sp.spmatrix],
    n_persons: int,
) -> sp.csr_matrix:
    """Sum adjacency contributions into one deduplicated CSR.

    Concatenates all COO triples and lets one ``tocsr`` do the merge —
    ``tocsr`` already sums duplicate coordinates and sorts indices, so the
    result is canonical without a separate ``sum_duplicates`` pass.  Far
    cheaper than repeated ``csr + csr`` for many small parts.

    A single already-canonical CSR part (the common shape under a serial
    pool, where one worker returns the whole batch sum) skips the COO
    round trip entirely: only the bounds and triangularity checks run.
    """
    parts = list(parts)
    if (
        len(parts) == 1
        and sp.issparse(parts[0])
        and parts[0].format == "csr"
        and parts[0].has_canonical_format
        and parts[0].data.dtype == np.int64
    ):
        out = parts[0]
        if out.shape != (n_persons, n_persons):
            raise SynthesisError("adjacency part shaped outside population")
        if out.nnz == 0:
            return empty_adjacency(n_persons)
        # strict upper triangle iff every row's smallest column index
        # exceeds the row number (indices are sorted: first = smallest)
        counts = np.diff(out.indptr)
        occupied = np.flatnonzero(counts)
        first_col = out.indices[out.indptr[occupied]]
        if np.any(first_col <= occupied):
            raise SynthesisError(
                "accumulate_adjacency expects strict upper triangles"
            )
        return out
    row_parts: list[np.ndarray] = []
    col_parts: list[np.ndarray] = []
    data_parts: list[np.ndarray] = []
    for part in parts:
        coo = part.tocoo()
        if len(coo.data) == 0:
            continue
        # scipy guarantees coordinates within shape, so a shape check
        # bounds every entry without rescanning the index arrays
        if coo.shape != (n_persons, n_persons):
            raise SynthesisError("adjacency part shaped outside population")
        # coordinate dtype is whatever scipy indexed with (int32 for
        # in-bounds shapes); coo_matrix below accepts any integer dtype,
        # so no astype copies here — only the weights are fixed to int64
        row_parts.append(coo.row)
        col_parts.append(coo.col)
        data_parts.append(coo.data.astype(np.int64, copy=False))
    if not row_parts:
        return empty_adjacency(n_persons)
    rows = np.concatenate(row_parts)
    cols = np.concatenate(col_parts)
    data = np.concatenate(data_parts)
    if np.any(rows >= cols):
        raise SynthesisError("accumulate_adjacency expects strict upper triangles")
    return sp.coo_matrix(
        (data, (rows, cols)), shape=(n_persons, n_persons)
    ).tocsr()


def triu_symmetrize(adj: sp.spmatrix) -> sp.csr_matrix:
    """Expand an upper-triangular adjacency to its full symmetric form."""
    adj = adj.tocsr()
    return (adj + adj.T).tocsr()


def sum_adjacency_list(
    matrices: Sequence[CollocationMatrix],
    n_persons: int,
    backend: str | None = None,
) -> sp.csr_matrix:
    """A worker's job: ``Σ place_adjacency(x)`` over its matrix share.

    "Each worker finally sums the set of adjacency matrices it has created
    and returns a single adjacency matrix to the root process."

    Under the ``masked`` backend the per-place products run in the
    compiled masked-triangular SpGEMM: collocation matrices are binary
    (one nonzero per person-hour), so ``x·xᵀ`` is the weighted pattern
    product with unit column weights.
    """
    live = [m for m in matrices if m.matrix.nnz]
    if not live:
        return empty_adjacency(n_persons)
    if resolve_backend(backend) == "masked":
        for m in live:
            if m.persons.size and int(m.persons.max()) >= n_persons:
                raise SynthesisError(
                    "collocation matrix references person outside population"
                )
        from .kernels.masked import sum_shares_adjacency

        ones = np.ones(max(m.matrix.shape[1] for m in live), dtype=np.int64)
        out = sum_shares_adjacency(
            [
                (m.matrix, ones[: m.matrix.shape[1]], m.persons.astype(np.int64))
                for m in live
            ],
            n_persons,
        )
        if out is not None:
            return out
    with kernel_stage("spgemm"):
        parts = [place_adjacency(m, n_persons) for m in live]
    with kernel_stage("accumulate"):
        return accumulate_adjacency(parts, n_persons)
