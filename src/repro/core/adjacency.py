"""Adjacency matrix computation: ``A_l = x·xᵀ`` and accumulation.

"The multiplication x·xᵀ sums all of the times each person collocates with
every other person" at a place; the network adjacency is the sum over
places, "stored as a sparse triangular matrix which provides significant
memory and processing time savings compared to using a full, dense
matrix."

Matrices are accumulated in **global person coordinates** as upper
triangular CSR (row < col), weights = collocated hours; the diagonal
(self-collocation) is dropped.  The per-place product runs in *local*
coordinates (participants only) and is mapped back to global ids, so the
cost of a place scales with its participants, not the population.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from ..errors import SynthesisError
from .colloc import CollocationMatrix

__all__ = [
    "place_adjacency",
    "accumulate_adjacency",
    "sum_adjacency_list",
    "triu_symmetrize",
    "empty_adjacency",
]


def place_adjacency(colloc: CollocationMatrix, n_persons: int) -> sp.coo_matrix:
    """``A_l = x·xᵀ`` for one place, in global person coordinates.

    Returns a strict upper-triangular COO matrix of shape ``(n_persons,
    n_persons)``; entry ``(i, j)`` counts the hours persons *i* and *j*
    were simultaneously at the place.  The diagonal (hours the person was
    simply present) is discarded.
    """
    if colloc.persons.size and int(colloc.persons.max()) >= n_persons:
        raise SynthesisError("collocation matrix references person outside population")
    x = colloc.matrix
    # The full symmetric product is unavoidable: scipy's csr_matmat has no
    # triangular-only mode (cf. its `tril`/`triu`, which filter *after* the
    # product), so the lower half is computed either way.  What we can
    # avoid is touching it again afterwards: mask in local coordinates
    # first, then gather global ids for the surviving (upper) half only —
    # local persons are sorted ascending, so local row < col iff global
    # row < col.
    local = (x @ x.T).tocoo()  # local person × local person, hour counts
    keep = local.row < local.col
    g = colloc.persons.astype(np.int64)
    return sp.coo_matrix(
        (local.data[keep].astype(np.int64), (g[local.row[keep]], g[local.col[keep]])),
        shape=(n_persons, n_persons),
    )


def empty_adjacency(n_persons: int) -> sp.csr_matrix:
    """All-zero upper-triangular adjacency."""
    return sp.csr_matrix((n_persons, n_persons), dtype=np.int64)


def accumulate_adjacency(
    parts: Iterable[sp.spmatrix],
    n_persons: int,
) -> sp.csr_matrix:
    """Sum adjacency contributions into one deduplicated CSR.

    Concatenates all COO triples and lets one ``tocsr`` do the merge —
    far cheaper than repeated ``csr + csr`` for many small parts.
    """
    row_parts: list[np.ndarray] = []
    col_parts: list[np.ndarray] = []
    data_parts: list[np.ndarray] = []
    for part in parts:
        coo = part.tocoo()
        if len(coo.data) == 0:
            continue
        # scipy guarantees coordinates within shape, so a shape check
        # bounds every entry without rescanning the index arrays
        if coo.shape != (n_persons, n_persons):
            raise SynthesisError("adjacency part shaped outside population")
        row_parts.append(coo.row.astype(np.int64))
        col_parts.append(coo.col.astype(np.int64))
        data_parts.append(coo.data.astype(np.int64))
    if not row_parts:
        return empty_adjacency(n_persons)
    rows = np.concatenate(row_parts)
    cols = np.concatenate(col_parts)
    data = np.concatenate(data_parts)
    if np.any(rows >= cols):
        raise SynthesisError("accumulate_adjacency expects strict upper triangles")
    out = sp.coo_matrix(
        (data, (rows, cols)), shape=(n_persons, n_persons)
    ).tocsr()
    out.sum_duplicates()
    return out


def triu_symmetrize(adj: sp.spmatrix) -> sp.csr_matrix:
    """Expand an upper-triangular adjacency to its full symmetric form."""
    adj = adj.tocsr()
    return (adj + adj.T).tocsr()


def sum_adjacency_list(
    matrices: Sequence[CollocationMatrix], n_persons: int
) -> sp.csr_matrix:
    """A worker's job: ``Σ place_adjacency(x)`` over its matrix share.

    "Each worker finally sums the set of adjacency matrices it has created
    and returns a single adjacency matrix to the root process."
    """
    return accumulate_adjacency(
        (place_adjacency(m, n_persons) for m in matrices), n_persons
    )
