"""Temporal tile cache: composable partial adjacencies for window queries.

The paper builds the complete network by summing per-interval adjacency
matrices ("the adjacency matrices are simply summed"), which makes
collocation adjacency **additive over any disjoint time partition**: a
spell ``[s, e)`` contributes ``min(e, t1) - max(s, t0)`` collocated hours
to window ``[t0, t1)``, and splitting the window at any interior point
splits that contribution exactly.  Every partial sum is an exact integer,
and every partial adjacency canonicalizes through the same coo→csr
summation, so composing partials is *bit-identical* (same CSR
``data``/``indices``/``indptr``) to a direct ``kernel="intervals"``
synthesis of the same window.

This module exploits that additivity to serve many overlapping or sliding
window queries without re-reading records per query:

* time is cut into **base tiles** of ``tile_hours`` (default 24 h); tile
  ``i`` covers ``[i·T, (i+1)·T)`` and stores the partial adjacency of
  exactly that span, built once from the records;
* base tiles are merged **segment-tree style** into power-of-two spans:
  node ``(level, i)`` covers ``2^level`` base tiles starting at tile
  ``i·2^level`` and is the sum of its two children.  Any aligned tile
  range decomposes into O(log W) cached nodes (the canonical segment-tree
  cover), so a query touches logarithmically many partials regardless of
  window length;
* an arbitrary ``[t0, t1)`` query composes that cover plus **fringe
  corrections** — partials for the two unaligned edge spans
  ``[t0, ceil(t0/T)·T)`` and ``[floor(t1/T)·T, t1)`` — computed from
  records only in those edge hours.  Fringe partials are cached in the
  same LRU (keyed by their exact window, memory-only), so a repeated
  unaligned query re-reads no records at all;
* composition is a pairwise CSR sum: exact integer addition of canonical
  upper-triangular matrices, whose canonical result is unique — hence
  bit-identical to the one-shot accumulation the direct pipeline does.

Resource management
-------------------
Tiles live in an LRU dict with **nnz-based accounting** against an
optional ``budget_nnz``; least-recently-used tiles are evicted first and
rebuilt (or re-read from disk) on demand, so cache memory never exceeds
the budget.  With a ``cache_dir``, every built tile is also persisted as
an atomic ``.npz`` beside a manifest keyed by a **content digest of the
log set** (file names, sizes, and byte contents of every usable file,
plus the population size, tile size, and place filter).  Rewriting a log
— ``repro repair`` / :func:`~repro.evlog.multifile.salvage_rank_logs`,
or any regeneration — changes the digest, and a cache opened against the
new digest discards every stale tile before rebuilding.

Persisted tiles are **self-healing**: every tile file's CRC32 is
recorded in the manifest at write time, and a tile whose bytes no longer
match on load — torn write, bit rot, truncation, manual damage — is
*quarantined* (renamed aside with a ``.quarantined`` suffix, dropped
from the manifest, counted in ``stats.tiles_quarantined``) and rebuilt
from the logs transparently.  Answers stay bit-identical; only that one
query's latency degrades to a rebuild.

Tile construction runs through the existing
:class:`~repro.distrib.taskpool.WorkerPool` machinery — one task per
tile, batched per query — and under ``dispatch="zero-copy"`` ships
:class:`~repro.evlog.reader.SliceDescriptor` byte ranges so workers mmap
and decode the chunks themselves, exactly like the batch pipeline.

Concurrency
-----------
A cache may be shared by concurrent reader threads (the network-query
service runs queries from an executor).  All cache state — the LRU dict
and its nnz accounting, the fringe partials, the mmap reader table, the
persisted-store manifest, and the stats counters — is guarded by one
reentrant lock, held while a query plans its cover and acquires (or
builds) every partial it needs.  The final composition runs *outside*
the lock on the acquired references: cached matrices are immutable, and
:func:`_sum_parts` never aliases its inputs, so a tile evicted by a
racing query stays valid for the composition that already holds it.
Eviction, warm-up, persistence, and ``close()`` all take the same lock,
which is what makes LRU bookkeeping safe while queries race.
"""

from __future__ import annotations

import hashlib
import io
import json
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from .._util import StageTimings, Timer, atomic_write_bytes
from ..obs import get_probe, start_span
from ..errors import SynthesisError, TileCacheError
from ..evlog.multifile import LogSet
from ..evlog.reader import (
    LogReader,
    SliceDescriptor,
    read_slice_columns,
    read_slice_descriptor,
)
from ..evlog.schema import LogRecordArray, empty_records
from ..distrib.taskpool import SerialPool, WorkerPool
from .adjacency import empty_adjacency
from .intervals import (
    build_interval_pack,
    build_interval_pack_columns,
    sum_pack_adjacency,
)
from .kernels import resolve_backend
from .network import CollocationNetwork
from .pipeline import DISPATCHES, _check_dispatch, _merge_duplicate_packs
from .slicing import clip_records

__all__ = [
    "TileCache",
    "TileCacheStats",
    "query_window",
    "logset_digest",
    "TILE_MANIFEST",
]

TILE_MANIFEST = "tiles.json"
#: v2 adds a per-tile CRC32 to the manifest (self-healing quarantine);
#: v1 stores carry no checksums and are discarded as stale on open
_TILE_VERSION = 2
_DEFAULT_TILE_HOURS = 24
_HASH_CHUNK = 1 << 20


def logset_digest(paths: Sequence[str | Path]) -> str:
    """Content digest of a set of log files (names, sizes, and bytes).

    Any rewrite of a file — salvage after a crash, regeneration, manual
    edit — changes the digest, which is what keys persisted tiles to the
    exact log bytes they were computed from.
    """
    h = hashlib.sha256()
    for path in sorted(Path(p) for p in paths):
        h.update(path.name.encode())
        h.update(int(path.stat().st_size).to_bytes(8, "little"))
        with path.open("rb") as fh:
            while True:
                block = fh.read(_HASH_CHUNK)
                if not block:
                    break
                h.update(block)
    return h.hexdigest()


@dataclass
class TileCacheStats:
    """Observability for one cache's lifetime."""

    queries: int = 0
    #: cover nodes served from the in-memory LRU
    tile_hits: int = 0
    #: fringe partials served from the in-memory LRU
    fringe_hits: int = 0
    #: tiles reloaded from the persisted store
    disk_hits: int = 0
    #: base tiles built from records
    tiles_built: int = 0
    #: upper-level nodes produced by summing their two children
    tiles_merged: int = 0
    #: tiles dropped by the LRU to stay under the nnz budget
    evictions: int = 0
    #: persisted tiles discarded because their digest went stale
    invalidated: int = 0
    #: persisted tiles quarantined on load (CRC mismatch / torn file)
    #: and transparently rebuilt from records
    tiles_quarantined: int = 0
    #: hours covered by record-level fringe synthesis (unaligned edges)
    fringe_hours: int = 0
    timings: StageTimings = field(
        default_factory=lambda: StageTimings(scope="cache")
    )

    def summary(self) -> str:
        lines = [
            f"queries          {self.queries:>10,}",
            f"tile hits        {self.tile_hits:>10,}",
            f"fringe hits      {self.fringe_hits:>10,}",
            f"disk hits        {self.disk_hits:>10,}",
            f"tiles built      {self.tiles_built:>10,}",
            f"tiles merged     {self.tiles_merged:>10,}",
            f"evictions        {self.evictions:>10,}",
            f"invalidated      {self.invalidated:>10,}",
            f"quarantined      {self.tiles_quarantined:>10,}",
            f"fringe hours     {self.fringe_hours:>10,}",
            "--- timings ---",
            self.timings.report(),
        ]
        return "\n".join(lines)


def _apply_place_mask(
    records: LogRecordArray, place_mask: np.ndarray
) -> LogRecordArray:
    """Keep records whose place id the boolean mask admits."""
    if not len(records):
        return records
    ids = records["place"].astype(np.int64)
    if int(ids.max()) >= len(place_mask):
        raise SynthesisError("records reference places outside the mask")
    return records[place_mask[ids]]


def _window_value_task(
    args: tuple[LogRecordArray, int, int, int, str],
) -> sp.csr_matrix:
    """Worker (value dispatch): one window's partial adjacency.

    Receives the window's records (already masked to the window and place
    filter at the root); clips, builds one interval pack, and returns the
    canonical upper-triangular CSR partial.
    """
    records, t0, t1, n_persons, backend = args
    if not len(records):
        return empty_adjacency(n_persons)
    sliced = clip_records(records, t0, t1)
    pack = build_interval_pack(sliced, t0, t1, backend=backend)
    return sum_pack_adjacency([pack], n_persons, backend=backend)


def _window_descriptor_task(
    args: tuple[list[SliceDescriptor], int, "np.ndarray | None", str],
) -> sp.csr_matrix:
    """Worker (zero-copy dispatch): mmap + decode + build one window.

    Receives byte-range descriptors only; a place split across files is
    union-merged so the partial matches a single build from the
    concatenated records.  Without a place filter the decode goes through
    the columnar reader — clipped int64 columns straight off the mmap,
    no intermediate record array.
    """
    descriptors, n_persons, place_mask, backend = args
    packs = []
    for descriptor in descriptors:
        if place_mask is None:
            starts, stops, person, place = read_slice_columns(descriptor)
            if not len(starts):
                continue
            packs.append(
                build_interval_pack_columns(
                    starts,
                    stops,
                    person,
                    place,
                    descriptor.t0,
                    descriptor.t1,
                    backend=backend,
                )
            )
            continue
        raw = read_slice_descriptor(descriptor)
        raw = _apply_place_mask(raw, place_mask)
        if not len(raw):
            continue
        sliced = clip_records(raw, descriptor.t0, descriptor.t1)
        packs.append(
            build_interval_pack(
                sliced, descriptor.t0, descriptor.t1, backend=backend
            )
        )
    packs = _merge_duplicate_packs(packs)
    if not packs:
        return empty_adjacency(n_persons)
    return sum_pack_adjacency(packs, n_persons, backend=backend)


def _tile_cost(mat: sp.csr_matrix) -> int:
    """LRU accounting unit: stored nonzeros (floor 1, so empty tiles still
    occupy a slot and cannot flood the cache for free)."""
    return max(int(mat.nnz), 1)


def _sum_parts(parts: list[sp.csr_matrix], n_persons: int) -> sp.csr_matrix:
    """Exact pairwise sum of canonical upper-triangular CSR partials.

    Integer addition of canonical CSR matrices yields the canonical CSR of
    the sum, and the canonical form of a matrix is unique — so this is
    bit-identical to the one-shot coo-concat accumulation the direct
    pipeline uses, while skipping its O(nnz log nnz) re-sort.  The result
    never aliases an input (cached tiles stay immutable).
    """
    if not parts:
        return empty_adjacency(n_persons)
    out = parts[0]
    for part in parts[1:]:
        out = out + part
    if out is parts[0]:
        out = out.copy()
    return out


class TileCache:
    """Precomputed composable partial adjacencies over a log directory.

    Parameters
    ----------
    log_dir:
        Per-rank EVL directory (or an existing :class:`LogSet`).
    n_persons:
        Population size (matrix dimension, fixed per cache).
    tile_hours:
        Base tile width in simulation hours (default 24).
    budget_nnz:
        In-memory LRU budget in stored nonzeros across all cached tiles;
        ``None`` (default) means unbounded.
    cache_dir:
        Directory for persisted tiles.  Opened against a stale content
        digest, every persisted tile is discarded before rebuilding.
    pool:
        Worker pool for tile construction; default
        :class:`~repro.distrib.taskpool.SerialPool` (owned, closed with
        the cache).
    dispatch:
        ``"value"`` ships record arrays to workers, ``"zero-copy"`` ships
        :class:`SliceDescriptor` byte ranges.
    strict:
        When False (default), damaged log files are quarantined exactly
        like the batch pipeline; when True the first damaged file raises.
    place_mask:
        Optional boolean array over place ids; only records at admitted
        places contribute (the layer-synthesis hook).  Part of the digest.
    backend:
        Kernel backend for tile construction (see
        :mod:`repro.core.kernels`), resolved once at construction so every
        worker runs the same concrete backend.  Deliberately *not* part of
        the digest: backends are bit-identical, so persisted tiles stay
        valid across backend changes.
    """

    def __init__(
        self,
        log_dir: str | Path | LogSet,
        n_persons: int,
        tile_hours: int = _DEFAULT_TILE_HOURS,
        budget_nnz: int | None = None,
        cache_dir: str | Path | None = None,
        pool: WorkerPool | None = None,
        dispatch: str = "value",
        strict: bool = False,
        place_mask: np.ndarray | None = None,
        backend: str | None = None,
    ) -> None:
        if n_persons <= 0:
            raise TileCacheError("n_persons must be positive")
        if tile_hours <= 0:
            raise TileCacheError("tile_hours must be positive")
        if budget_nnz is not None and budget_nnz < 1:
            raise TileCacheError("budget_nnz must be positive (or None)")
        _check_dispatch(dispatch)
        self.log_set = log_dir if isinstance(log_dir, LogSet) else LogSet(log_dir)
        self.n_persons = int(n_persons)
        self.tile_hours = int(tile_hours)
        self.budget_nnz = budget_nnz
        self.dispatch = dispatch
        self.backend = resolve_backend(backend)
        self.place_mask = (
            np.asarray(place_mask, dtype=bool) if place_mask is not None else None
        )
        self.stats = TileCacheStats()

        # quarantine verdict is per file and window-independent, mirroring
        # the batch pipeline: a damaged file never contributes to any tile
        if strict:
            for path in self.log_set.paths:
                LogReader(path, strict=True).verify()
            bad: list[tuple[Path, str]] = []
        else:
            bad = self.log_set.quarantine_scan()
        damaged = {path for path, _reason in bad}
        self.paths: list[Path] = [
            p for p in self.log_set.paths if p not in damaged
        ]
        self.quarantined: list[str] = [str(p) for p, _ in bad]

        self.digest = self._config_digest()
        self._own_pool = pool is None
        self.pool = pool or SerialPool()
        #: one reentrant lock guards all mutable cache state (LRU dict,
        #: nnz accounting, readers, persisted manifest, stats); immutable
        #: cached matrices are composed outside it — see module docstring
        self._lock = threading.RLock()
        self._readers: dict[Path, LogReader] = {}
        #: LRU over tree nodes ``(level, idx)`` and fringe partials
        #: ``("F", w0, w1)`` — one nnz budget governs both
        self._tiles: "OrderedDict[tuple, sp.csr_matrix]" = OrderedDict()
        self._cached_nnz = 0
        #: persisted-tile index: key -> {"file": name, "crc": crc32}
        self._disk: dict[tuple[int, int], dict] = {}
        #: tile files quarantined this lifetime (corrupt/torn on load)
        self.quarantined_tiles: list[str] = []
        self._cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self._cache_dir is not None:
            self._open_store()
        self._closed = False

    # -- digest / persisted store ---------------------------------------------

    def _config_digest(self) -> str:
        """Digest of everything a tile's contents depend on."""
        payload = {
            "version": _TILE_VERSION,
            "logset": logset_digest(self.paths),
            "quarantined": sorted(Path(p).name for p in self.quarantined),
            "n_persons": self.n_persons,
            "tile_hours": self.tile_hours,
            "place_mask": (
                hashlib.sha256(np.packbits(self.place_mask).tobytes()).hexdigest()
                if self.place_mask is not None
                else None
            ),
        }
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def _open_store(self) -> None:
        """Adopt a persisted tile store, discarding it on digest mismatch."""
        assert self._cache_dir is not None
        self._cache_dir.mkdir(parents=True, exist_ok=True)
        manifest_path = self._cache_dir / TILE_MANIFEST
        if not manifest_path.is_file():
            return
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            manifest = None
        stale = (
            manifest is None
            or manifest.get("version") != _TILE_VERSION
            or manifest.get("digest") != self.digest
        )
        tiles = (manifest or {}).get("tiles", {})
        if stale:
            for entry in tiles.values():
                # v1 manifests map to bare file names, v2 to objects
                fname = entry["file"] if isinstance(entry, dict) else entry
                try:
                    (self._cache_dir / fname).unlink()
                except (OSError, TypeError, KeyError):
                    pass
            try:
                manifest_path.unlink()
            except OSError:
                pass
            self.stats.invalidated += len(tiles)
            get_probe().cache_event("invalidated", len(tiles))
            return
        for key_str, entry in tiles.items():
            level_str, _, idx_str = key_str.partition(":")
            if (
                isinstance(entry, dict)
                and isinstance(entry.get("crc"), int)
                and (self._cache_dir / entry["file"]).is_file()
            ):
                self._disk[(int(level_str), int(idx_str))] = entry

    def _write_manifest(self) -> None:
        assert self._cache_dir is not None
        manifest = {
            "version": _TILE_VERSION,
            "digest": self.digest,
            "tile_hours": self.tile_hours,
            "n_persons": self.n_persons,
            "tiles": {
                f"{level}:{idx}": entry
                for (level, idx), entry in sorted(self._disk.items())
            },
        }
        atomic_write_bytes(
            self._cache_dir / TILE_MANIFEST,
            json.dumps(manifest, indent=2, sort_keys=True).encode(),
        )

    def _persist(self, key: tuple[int, int], mat: sp.csr_matrix) -> None:
        if self._cache_dir is None or key in self._disk:
            return
        level, idx = key
        fname = f"tile_L{level:02d}_{idx:08d}.npz"
        buf = io.BytesIO()
        np.savez_compressed(
            buf,
            data=mat.data,
            indices=mat.indices,
            indptr=mat.indptr,
            shape=np.array(mat.shape, dtype=np.int64),
        )
        data = buf.getvalue()
        atomic_write_bytes(self._cache_dir / fname, data)
        self._disk[key] = {"file": fname, "crc": zlib.crc32(data)}
        self._write_manifest()

    def _quarantine_tile(self, key: tuple[int, int], reason: str) -> None:
        """Move a damaged persisted tile aside and forget it.

        The file is renamed (never deleted — an operator may want the
        evidence) and the manifest rewritten without it, so the next
        :meth:`_persist` of the rebuilt tile starts from a clean name.
        """
        assert self._cache_dir is not None
        entry = self._disk.pop(key, None)
        if entry is None:
            return
        path = self._cache_dir / entry["file"]
        try:
            path.replace(path.with_name(path.name + ".quarantined"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        self._write_manifest()
        self.stats.tiles_quarantined += 1
        get_probe().cache_event("quarantined")
        self.quarantined_tiles.append(f"{path} ({reason})")

    def _load_disk(self, key: tuple[int, int]) -> sp.csr_matrix | None:
        """A persisted tile, or ``None`` after quarantining a bad one.

        Every load re-verifies the manifest CRC over the file's bytes, so
        corruption *anywhere* in the npz (torn write, flipped bits,
        truncation) is detected before the matrix is trusted; the caller
        falls through to a transparent rebuild from records.
        """
        assert self._cache_dir is not None
        entry = self._disk[key]
        try:
            raw = (self._cache_dir / entry["file"]).read_bytes()
        except OSError:
            self._quarantine_tile(key, "unreadable")
            return None
        if zlib.crc32(raw) != entry["crc"]:
            self._quarantine_tile(key, "crc mismatch")
            return None
        try:
            with np.load(io.BytesIO(raw)) as z:
                return sp.csr_matrix(
                    (z["data"], z["indices"], z["indptr"]),
                    shape=tuple(z["shape"]),
                )
        except (OSError, KeyError, ValueError, zlib.error):
            # CRC matched but the archive will not decode — treat it the
            # same way: quarantine and rebuild
            self._quarantine_tile(key, "undecodable")
            return None

    # -- LRU ------------------------------------------------------------------

    @property
    def cached_nnz(self) -> int:
        """Current in-memory accounting total (≤ ``budget_nnz`` always)."""
        return self._cached_nnz

    @property
    def n_tiles_cached(self) -> int:
        return len(self._tiles)

    def _insert(self, key: tuple[int, int], mat: sp.csr_matrix) -> None:
        if key in self._tiles:
            self._tiles.move_to_end(key)
            return
        self._tiles[key] = mat
        self._cached_nnz += _tile_cost(mat)
        if self.budget_nnz is not None:
            while self._cached_nnz > self.budget_nnz and self._tiles:
                _k, dropped = self._tiles.popitem(last=False)
                self._cached_nnz -= _tile_cost(dropped)
                self.stats.evictions += 1
                get_probe().cache_event("evicted")

    # -- record access --------------------------------------------------------

    def _reader(self, path: Path) -> LogReader:
        reader = self._readers.get(path)
        if reader is None:
            reader = LogReader(path, use_mmap=True)
            self._readers[path] = reader
        return reader

    def _window_args(self, t0: int, t1: int):
        """Root side of one window-build task."""
        if self.dispatch == "zero-copy":
            descriptors = []
            for path in self.paths:
                d = self._reader(path).slice_descriptor(t0, t1)
                if d.chunk_offsets:
                    descriptors.append(d)
            return descriptors, self.n_persons, self.place_mask, self.backend
        parts = []
        for path in self.paths:
            rec = self._reader(path).read_time_slice(t0, t1)
            if self.place_mask is not None:
                rec = _apply_place_mask(rec, self.place_mask)
            if len(rec):
                parts.append(rec)
        records = (
            np.concatenate(parts)
            if len(parts) > 1
            else (parts[0] if parts else empty_records(0))
        )
        return records, t0, t1, self.n_persons, self.backend

    def _build_windows(
        self, windows: list[tuple[int, int]]
    ) -> list[sp.csr_matrix]:
        """Build the partial adjacency of each window, one pool task each."""
        if not windows:
            return []
        task = (
            _window_descriptor_task
            if self.dispatch == "zero-copy"
            else _window_value_task
        )
        with start_span("kernel", attrs={"windows": len(windows)}) as span:
            with self.stats.timings.time("build"):
                args = [self._window_args(w0, w1) for w0, w1 in windows]
                mats = self.pool.map(task, args)
            span.set_attr("nnz", sum(int(m.nnz) for m in mats))
            return mats

    # -- segment tree ---------------------------------------------------------

    def _cover(self, a0: int, a1: int) -> list[tuple[int, int]]:
        """Canonical segment-tree cover of base-tile range ``[a0, a1)``:
        maximal power-of-two spans aligned to their own size, O(log W)."""
        spans: list[tuple[int, int]] = []
        p = a0
        while p < a1:
            k = (p & -p).bit_length() - 1 if p else (a1 - p).bit_length() - 1
            while (1 << k) > a1 - p:
                k -= 1
            spans.append((k, p >> k))
            p += 1 << k
        return spans

    def _available(self, key: tuple[int, int]) -> bool:
        return key in self._tiles or key in self._disk

    def _collect_missing_base(
        self, level: int, idx: int, out: list[int]
    ) -> None:
        """Base tiles under node ``(level, idx)`` with no cached ancestor
        at or below the node itself."""
        if self._available((level, idx)):
            return
        if level == 0:
            out.append(idx)
            return
        self._collect_missing_base(level - 1, 2 * idx, out)
        self._collect_missing_base(level - 1, 2 * idx + 1, out)

    def _get_tile(self, level: int, idx: int) -> sp.csr_matrix:
        key = (level, idx)
        mat = self._tiles.get(key)
        if mat is not None:
            self._tiles.move_to_end(key)
            self.stats.tile_hits += 1
            get_probe().cache_event("tile_hit")
            return mat
        if key in self._disk:
            mat = self._load_disk(key)
            if mat is not None:
                self.stats.disk_hits += 1
                get_probe().cache_event("disk_hit")
                self._persist(key, mat)
                self._insert(key, mat)
                return mat
        if level == 0:
            w0 = idx * self.tile_hours
            (mat,) = self._build_windows([(w0, w0 + self.tile_hours)])
            self.stats.tiles_built += 1
            get_probe().cache_event("built")
        else:
            left = self._get_tile(level - 1, 2 * idx)
            right = self._get_tile(level - 1, 2 * idx + 1)
            with self.stats.timings.time("merge"):
                mat = _sum_parts([left, right], self.n_persons)
            self.stats.tiles_merged += 1
            get_probe().cache_event("merged")
        self._persist(key, mat)
        self._insert(key, mat)
        return mat

    def _materialize_base(self, indices: list[int]) -> None:
        """Batch-build missing base tiles through one parallel map."""
        missing = sorted(
            {i for i in indices if not self._available((0, i))}
        )
        if not missing:
            return
        T = self.tile_hours
        mats = self._build_windows([(i * T, (i + 1) * T) for i in missing])
        for i, mat in zip(missing, mats):
            self.stats.tiles_built += 1
            get_probe().cache_event("built")
            self._persist((0, i), mat)
            self._insert((0, i), mat)

    # -- public API -----------------------------------------------------------

    def warm(self, t0: int, t1: int) -> int:
        """Prebuild every tile a query inside ``[t0, t1)`` can touch.

        Base tiles covering the span are constructed in parallel (one pool
        task each), then the segment-tree cover of the span is merged so
        large-window queries hit cached upper levels too.  Returns the
        number of base tiles built.
        """
        if t1 <= t0:
            raise TileCacheError(f"empty warm span [{t0}, {t1})")
        with self._lock:
            self._check_open()
            T = self.tile_hours
            a0, a1 = t0 // T, -(-t1 // T)
            built_before = self.stats.tiles_built
            cover = self._cover(a0, a1)
            missing: list[int] = []
            for level, idx in cover:
                self._collect_missing_base(level, idx, missing)
            self._materialize_base(missing)
            for level, idx in cover:
                self._get_tile(level, idx)
            return self.stats.tiles_built - built_before

    def query_window(self, t0: int, t1: int) -> CollocationNetwork:
        """The collocation network of ``[t0, t1)``, composed from tiles.

        Bit-identical (same CSR ``data``/``indices``/``indptr``) to
        ``synthesize_from_logs(..., kernel="intervals")`` over the same
        window and log directory.  Aligned spans come from O(log W) cached
        tiles; unaligned edges are corrected from records in the two edge
        spans only, and those fringe partials are themselves cached so a
        repeated query touches no records.
        """
        if t1 <= t0:
            raise TileCacheError(f"empty query window [{t0}, {t1})")
        if t0 < 0:
            raise TileCacheError("query windows start at hour 0")
        with self._lock:
            self._check_open()
            T = self.tile_hours
            a0, a1 = -(-t0 // T), t1 // T
            plan: list[tuple] = []
            if a0 >= a1:
                # no whole tile inside the window: one fringe covers it
                plan.append(("fringe", t0, t1))
            else:
                if t0 < a0 * T:
                    plan.append(("fringe", t0, a0 * T))
                plan.extend(
                    ("tile", level, idx) for level, idx in self._cover(a0, a1)
                )
                if a1 * T < t1:
                    plan.append(("fringe", a1 * T, t1))

            missing: list[int] = []
            fringe_parts: dict[tuple[int, int], sp.csr_matrix] = {}
            to_build: list[tuple[int, int]] = []
            for entry in plan:
                if entry[0] == "tile":
                    self._collect_missing_base(entry[1], entry[2], missing)
                    continue
                window = (entry[1], entry[2])
                cached = self._tiles.get(("F", *window))
                if cached is not None:
                    self._tiles.move_to_end(("F", *window))
                    self.stats.fringe_hits += 1
                    get_probe().cache_event("fringe_hit")
                    fringe_parts[window] = cached
                else:
                    to_build.append(window)
            self._materialize_base(missing)
            for window, mat in zip(to_build, self._build_windows(to_build)):
                fringe_parts[window] = mat
                self._insert(("F", *window), mat)
            self.stats.fringe_hours += sum(w1 - w0 for w0, w1 in to_build)

            parts: list[sp.csr_matrix] = []
            for entry in plan:
                if entry[0] == "tile":
                    parts.append(self._get_tile(entry[1], entry[2]))
                else:
                    parts.append(fringe_parts[(entry[1], entry[2])])
            self.stats.queries += 1
            get_probe().cache_event("query")

        # compose outside the lock: every part is an immutable matrix this
        # thread holds a reference to, so racing evictions cannot hurt it
        with Timer() as timer:
            adjacency = _sum_parts(parts, self.n_persons)
        with self._lock:
            self.stats.timings.add("reduce", timer.elapsed)
        return CollocationNetwork(adjacency, t0=int(t0), t1=int(t1))

    def horizon(self) -> int:
        """Last simulation hour any usable log record reaches (chunk-index
        metadata only — no record decode).  0 with no records."""
        with self._lock:
            self._check_open()
            t_max = 0
            for path in self.paths:
                for chunk in self._reader(path).chunks:
                    t_max = max(t_max, int(chunk.t_max))
            return t_max

    def close(self) -> None:
        """Release mmapped readers and the owned pool (idempotent).

        Takes the cache lock, so a close never yanks readers out from
        under a query that is still acquiring tiles; compositions already
        past acquisition only touch in-memory matrices and finish safely.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for reader in self._readers.values():
                reader.close()
            self._readers.clear()
            if self._own_pool:
                self.pool.close()

    def _check_open(self) -> None:
        if self._closed:
            raise TileCacheError("tile cache is closed")

    def __enter__(self) -> "TileCache":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"TileCache(files={len(self.paths)}, tile_hours={self.tile_hours}, "
            f"tiles={self.n_tiles_cached}, nnz={self.cached_nnz:,}, "
            f"dispatch={self.dispatch!r})"
        )


def query_window(
    log_dir: str | Path | LogSet,
    n_persons: int,
    t0: int,
    t1: int,
    cache: TileCache | None = None,
    tile_hours: int = _DEFAULT_TILE_HOURS,
    budget_nnz: int | None = None,
    cache_dir: str | Path | None = None,
    pool: WorkerPool | None = None,
    dispatch: str = "value",
    strict: bool = False,
    backend: str | None = None,
) -> tuple[CollocationNetwork, TileCache]:
    """One window query against a (possibly fresh) tile cache.

    Returns ``(network, cache)`` — hold on to the cache and pass it back
    for subsequent queries so tiles stay warm; close it when done.  With
    ``cache`` given, the remaining cache-construction arguments are
    ignored and the cache's population must match ``n_persons``.
    """
    if cache is None:
        cache = TileCache(
            log_dir,
            n_persons,
            tile_hours=tile_hours,
            budget_nnz=budget_nnz,
            cache_dir=cache_dir,
            pool=pool,
            dispatch=dispatch,
            strict=strict,
            backend=backend,
        )
    elif cache.n_persons != n_persons:
        raise TileCacheError(
            f"cache population {cache.n_persons} != requested {n_persons}"
        )
    return cache.query_window(t0, t1), cache
