"""Whole-network summary statistics.

The Section V text reports the complete network's scale directly: "The
complete sparse triangular adjacency matrix represents a network consisting
of 2,927,761 vertices (persons) and 830,328,649 edges (collocations) and
requires approximately 10GB of memory to store."  :func:`summarize`
produces the same inventory for any :class:`CollocationNetwork`, plus the
component structure that contextualizes the ego-network figures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse.csgraph import connected_components

from .._util import human_bytes, human_count
from ..core.network import CollocationNetwork

__all__ = ["NetworkSummary", "summarize"]


@dataclass
class NetworkSummary:
    """Headline statistics of a collocation network."""

    n_vertices: int
    n_edges: int
    total_weight: int
    memory_bytes: int
    mean_degree: float
    max_degree: int
    n_isolated: int
    n_components: int
    giant_component_size: int
    edges_per_person: float

    @property
    def giant_component_fraction(self) -> float:
        return (
            self.giant_component_size / self.n_vertices if self.n_vertices else 0.0
        )

    def report(self) -> str:
        return "\n".join(
            [
                f"vertices (persons)    {human_count(self.n_vertices):>15}",
                f"edges (collocations)  {human_count(self.n_edges):>15}",
                f"total weight (hours)  {human_count(self.total_weight):>15}",
                f"memory                {human_bytes(self.memory_bytes):>15}",
                f"mean degree           {self.mean_degree:>15.2f}",
                f"max degree            {human_count(self.max_degree):>15}",
                f"isolated vertices     {human_count(self.n_isolated):>15}",
                f"components            {human_count(self.n_components):>15}",
                f"giant component       {self.giant_component_fraction:>14.1%}",
                f"edges per person      {self.edges_per_person:>15.2f}",
            ]
        )


def summarize(network: CollocationNetwork) -> NetworkSummary:
    """Compute a :class:`NetworkSummary` (one sparse pass + components)."""
    degrees = network.degrees()
    n = network.n_persons
    n_isolated = int(np.count_nonzero(degrees == 0))
    n_comp, labels = connected_components(
        network.symmetric(), directed=False, return_labels=True
    )
    sizes = np.bincount(labels)
    # ignore singleton components made of isolated vertices when reporting
    giant = int(sizes.max()) if len(sizes) else 0
    return NetworkSummary(
        n_vertices=n,
        n_edges=network.n_edges,
        total_weight=network.total_weight,
        memory_bytes=network.memory_bytes,
        mean_degree=float(degrees.mean()) if n else 0.0,
        max_degree=int(degrees.max()) if n else 0,
        n_isolated=n_isolated,
        n_components=int(n_comp),
        giant_component_size=giant,
        edges_per_person=network.n_edges / n if n else 0.0,
    )
