"""Demographic within-group subnetworks (Figure 5).

"The entire simulated population was divided according to age groups ...
These figures represent the within-group network connectedness such that
only collocation connections between persons within each age group are
considered and edges between age groups are removed."
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..config import AGE_GROUPS
from ..errors import AnalysisError
from ..core.network import CollocationNetwork
from ..synthpop.person import PersonTable
from .degree import DegreeDistribution, degree_distribution

__all__ = [
    "within_group_network",
    "age_group_degree_distributions",
    "group_members",
]


def group_members(persons: PersonTable, group_index: int) -> np.ndarray:
    """Person ids belonging to one of the paper's age groups."""
    if not 0 <= group_index < len(AGE_GROUPS):
        raise AnalysisError(f"no age group {group_index}")
    return np.flatnonzero(persons.age_group() == group_index).astype(np.int64)


def within_group_network(
    network: CollocationNetwork, members: np.ndarray
) -> tuple[sp.csr_matrix, np.ndarray]:
    """Induced symmetric subnetwork on a member set (cross-group edges
    removed).  Returns ``(sym_matrix, sorted_members)``."""
    return network.subgraph(np.asarray(members, dtype=np.int64))


def age_group_degree_distributions(
    network: CollocationNetwork, persons: PersonTable
) -> dict[str, DegreeDistribution]:
    """Within-group degree distribution per Figure 5 age group.

    Keys are the group labels ("0-14", "15-18", "19-44", "45-64", "65+");
    each distribution counts only edges between two members of the group.
    """
    if len(persons) != network.n_persons:
        raise AnalysisError("person table does not match network population")
    out: dict[str, DegreeDistribution] = {}
    groups = persons.age_group()
    for index, (label, _, _) in enumerate(AGE_GROUPS):
        members = np.flatnonzero(groups == index).astype(np.int64)
        if len(members) == 0:
            out[label] = degree_distribution(np.zeros(0, dtype=np.int64))
            continue
        sub, _ = network.subgraph(members)
        degrees = np.diff(sub.indptr).astype(np.int64)
        out[label] = degree_distribution(degrees)
    return out
