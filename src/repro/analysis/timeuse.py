"""Time-use statistics from event logs.

The inputs to chiSIM are activity schedules, so the natural audit of a run
— and the bridge between the log layer and demography — is a time-use
table: person-hours by activity, broken down by demographic group.  This
is the aggregate-statistics view the paper contrasts with network analysis
(Section I), provided here for completeness and used by the population
validator's deeper checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AGE_GROUPS, age_group_labels
from ..errors import AnalysisError
from ..evlog.schema import LOG_DTYPE, LogRecordArray
from ..synthpop.person import PersonTable
from ..synthpop.schedule import ACTIVITY_NAMES, Activity

__all__ = ["TimeUseTable", "time_use_table"]


@dataclass
class TimeUseTable:
    """Person-hours by (age group, activity).

    Attributes
    ----------
    hours:
        ``(n_groups, n_activities)`` int64 person-hours.
    group_sizes:
        persons per age group.
    """

    hours: np.ndarray
    group_sizes: np.ndarray
    activity_names: list[str]

    @property
    def group_labels(self) -> list[str]:
        return age_group_labels()

    def shares(self) -> np.ndarray:
        """Row-normalized: fraction of each group's time per activity."""
        totals = self.hours.sum(axis=1, keepdims=True)
        return np.divide(
            self.hours, totals, out=np.zeros_like(self.hours, dtype=float),
            where=totals > 0,
        )

    def hours_per_person_week(self, total_hours: int) -> np.ndarray:
        """Mean weekly hours per activity for a group member."""
        weeks = total_hours / (7 * 24)
        sizes = np.maximum(self.group_sizes, 1)[:, None]
        return self.hours / sizes / max(weeks, 1e-12)

    def report(self) -> str:
        shares = self.shares()
        lines = ["time use by age group (fraction of group's hours):"]
        header = "          " + "".join(
            f"{name[:9]:>10}" for name in self.activity_names
        )
        lines.append(header)
        for i, label in enumerate(self.group_labels):
            row = "".join(f"{shares[i, j]:>10.3f}" for j in range(shares.shape[1]))
            lines.append(f"  {label:>7} {row}")
        return "\n".join(lines)


def time_use_table(
    records: LogRecordArray, persons: PersonTable
) -> TimeUseTable:
    """Aggregate person-hours by (age group, activity) from log records."""
    records = np.asarray(records)
    if records.dtype != LOG_DTYPE:
        raise AnalysisError("expected log records")
    if records.size and int(records["person"].max()) >= len(persons):
        raise AnalysisError("records reference persons outside the table")
    groups = persons.age_group().astype(np.int64)
    g = len(AGE_GROUPS)
    n_act = max(len(Activity), int(records["activity"].max()) + 1 if records.size else 1)
    hours = (records["stop"] - records["start"]).astype(np.int64)
    rec_groups = groups[records["person"].astype(np.int64)]
    rec_acts = records["activity"].astype(np.int64)
    flat = rec_groups * n_act + rec_acts
    table = np.bincount(flat, weights=hours, minlength=g * n_act).reshape(
        g, n_act
    )
    names = [
        ACTIVITY_NAMES.get(Activity(a), f"activity-{a}")
        if a in set(int(x) for x in Activity)
        else f"activity-{a}"
        for a in range(n_act)
    ]
    return TimeUseTable(
        hours=table.astype(np.int64),
        group_sizes=np.bincount(groups, minlength=g),
        activity_names=names,
    )
