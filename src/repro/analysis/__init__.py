"""Network analysis — paper Section V.

Implements every quantitative characterization the paper reports:

* :mod:`repro.analysis.degree` — vertex degree distributions (Figure 3),
  including log-binning for the log-log plots;
* :mod:`repro.analysis.fits` — power-law, truncated power-law, and
  exponential fits to the degree distribution (the three reference curves
  of Figure 3);
* :mod:`repro.analysis.clustering` — local clustering coefficient
  (transitivity) per vertex and its histogram (Figure 4);
* :mod:`repro.analysis.ego` — radius-2 ego subgraphs around sampled
  individuals (Figures 1 and 2);
* :mod:`repro.analysis.groups` — within-age-group subnetworks and their
  degree distributions (Figure 5);
* :mod:`repro.analysis.summary` — whole-network statistics (vertex/edge
  counts, components, memory footprint: the Section V text numbers).

All computations run on the sparse adjacency directly and are
cross-validated against networkx in the test suite.
"""

from .degree import DegreeDistribution, degree_distribution, log_binned
from .fits import (
    FitResult,
    bootstrap_exponent_ci,
    fit_power_law,
    fit_truncated_power_law,
    fit_exponential,
    compare_fits,
    power_law_mle,
)
from .clustering import local_clustering, clustering_histogram, mean_clustering
from .ego import EgoNetwork, ego_network, sample_ego_networks
from .groups import within_group_network, age_group_degree_distributions
from .summary import NetworkSummary, summarize
from .community import label_propagation, modularity, community_sizes
from .smallworld import PathLengthStats, sampled_path_lengths, small_world_sigma
from .contactmatrix import ContactMatrix, contact_matrix
from .timeuse import TimeUseTable, time_use_table
from .weighted import (
    strength_distribution,
    edge_weight_distribution,
    weighted_clustering,
    degree_assortativity,
)

__all__ = [
    "DegreeDistribution",
    "degree_distribution",
    "log_binned",
    "FitResult",
    "fit_power_law",
    "fit_truncated_power_law",
    "fit_exponential",
    "compare_fits",
    "power_law_mle",
    "bootstrap_exponent_ci",
    "local_clustering",
    "clustering_histogram",
    "mean_clustering",
    "EgoNetwork",
    "ego_network",
    "sample_ego_networks",
    "within_group_network",
    "age_group_degree_distributions",
    "NetworkSummary",
    "summarize",
    "label_propagation",
    "modularity",
    "community_sizes",
    "PathLengthStats",
    "sampled_path_lengths",
    "small_world_sigma",
    "strength_distribution",
    "edge_weight_distribution",
    "weighted_clustering",
    "degree_assortativity",
    "ContactMatrix",
    "contact_matrix",
    "TimeUseTable",
    "time_use_table",
]
