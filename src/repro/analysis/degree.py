"""Vertex degree distributions (Figure 3).

The paper plots "the vertex degree distribution fraction, scaled by the
total number of persons" on a log-log scale — i.e. for every observed
degree *k*, the number of persons with that degree.
:class:`DegreeDistribution` holds exactly that, plus the probability
normalization used when fitting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError

__all__ = ["DegreeDistribution", "degree_distribution", "log_binned"]


@dataclass
class DegreeDistribution:
    """Empirical degree distribution.

    Attributes
    ----------
    degrees:
        sorted unique degree values ≥ 1 (isolated vertices are excluded
        from the plot but counted in :attr:`n_isolated`).
    counts:
        persons with each degree.
    n_vertices:
        total population (including isolated vertices).
    n_isolated:
        persons with degree zero.
    """

    degrees: np.ndarray
    counts: np.ndarray
    n_vertices: int
    n_isolated: int

    @property
    def fractions(self) -> np.ndarray:
        """P(k): counts normalized over connected vertices."""
        total = self.counts.sum()
        return self.counts / total if total else self.counts.astype(float)

    @property
    def mean_degree(self) -> float:
        total = self.counts.sum()
        if total == 0:
            return 0.0
        return float((self.degrees * self.counts).sum() / total)

    @property
    def max_degree(self) -> int:
        return int(self.degrees.max()) if len(self.degrees) else 0

    def head_count(self, k_max: int = 7) -> np.ndarray:
        """Counts for degrees 1..k_max (the paper's "vertex degree values
        between 1-7 are approximately each represented by just over 10^5
        persons" observation), zero-filled for missing degrees."""
        out = np.zeros(k_max, dtype=np.int64)
        for i, k in enumerate(range(1, k_max + 1)):
            hit = np.flatnonzero(self.degrees == k)
            if len(hit):
                out[i] = self.counts[hit[0]]
        return out

    def ccdf(self) -> tuple[np.ndarray, np.ndarray]:
        """Complementary CDF: ``(k, P(K >= k))`` over observed degrees.

        The CCDF is the noise-robust way to present heavy-tailed degree
        data (no binning artifacts); monotone non-increasing by
        construction.
        """
        if len(self.degrees) == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        total = self.counts.sum()
        tail = np.cumsum(self.counts[::-1])[::-1]
        return self.degrees.copy(), tail / total

    def flatness(self, k_lo: int, k_hi: int) -> float:
        """Max/min count ratio over a degree range — a scalar measure of
        how flat the distribution is there (used for the Figure 5 claims).

        Returns ``inf`` when some degree in range has zero count.
        """
        mask = (self.degrees >= k_lo) & (self.degrees <= k_hi)
        if not mask.any():
            return float("inf")
        vals = self.counts[mask].astype(float)
        if len(vals) < (k_hi - k_lo + 1) or vals.min() == 0:
            return float("inf")
        return float(vals.max() / vals.min())


def degree_distribution(degrees: np.ndarray) -> DegreeDistribution:
    """Build the empirical distribution from a per-person degree vector."""
    degrees = np.asarray(degrees)
    if degrees.ndim != 1:
        raise AnalysisError("degree vector must be 1-D")
    if degrees.size and degrees.min() < 0:
        raise AnalysisError("degrees must be non-negative")
    n_isolated = int(np.count_nonzero(degrees == 0))
    connected = degrees[degrees > 0]
    uniq, counts = np.unique(connected, return_counts=True)
    return DegreeDistribution(
        degrees=uniq.astype(np.int64),
        counts=counts.astype(np.int64),
        n_vertices=len(degrees),
        n_isolated=n_isolated,
    )


def log_binned(
    dist: DegreeDistribution, bins_per_decade: int = 8
) -> tuple[np.ndarray, np.ndarray]:
    """Logarithmically binned (k, mean density) series for plotting.

    Log-binning smooths the noisy tail of heavy-tailed distributions; the
    returned density is counts per unit degree within each bin so slopes
    stay comparable with the raw distribution.
    """
    if len(dist.degrees) == 0:
        return np.empty(0), np.empty(0)
    k_max = dist.max_degree
    n_bins = max(1, int(np.ceil(np.log10(max(k_max, 2)) * bins_per_decade)))
    edges = np.unique(
        np.round(np.logspace(0, np.log10(k_max + 1), n_bins + 1)).astype(np.int64)
    )
    if edges[0] > 1:
        edges = np.concatenate(([1], edges))
    centers = []
    densities = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (dist.degrees >= lo) & (dist.degrees < hi)
        width = hi - lo
        if not mask.any() or width <= 0:
            continue
        total = dist.counts[mask].sum()
        centers.append(np.sqrt(lo * (hi - 1)))
        densities.append(total / width)
    return np.asarray(centers), np.asarray(densities)
