"""Community detection on collocation networks.

The paper's introduction motivates going beyond aggregate statistics with
"more novel approaches such as community detection algorithms that can
capture emergent macro level characteristics of the network".  This module
provides:

* :func:`label_propagation` — weighted synchronous label propagation,
  implemented as sparse matrix products (one ``A @ onehot(labels)`` per
  sweep), scaling to the full collocation network;
* :func:`modularity` — Newman weighted modularity of a labeling;
* :func:`community_sizes` — size census of the detected communities.

On collocation networks the detected communities recover the model's
ground-truth social units (households, classrooms, workplaces), which the
tests assert.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..core.network import CollocationNetwork
from ..errors import AnalysisError

__all__ = ["label_propagation", "modularity", "community_sizes"]


def _symmetric(network: CollocationNetwork | sp.spmatrix) -> sp.csr_matrix:
    if isinstance(network, CollocationNetwork):
        return network.symmetric()
    return sp.csr_matrix(network)


def label_propagation(
    network: CollocationNetwork | sp.spmatrix,
    max_sweeps: int = 30,
    seed: int = 0,
) -> np.ndarray:
    """Weighted label propagation; returns a dense label per vertex.

    Each sweep assigns every vertex the label carrying the greatest
    incident edge weight among its neighbors (synchronous update with a
    stay-put bias to damp oscillation); converges when < 0.1% of vertices
    change.  Isolated vertices keep singleton labels.
    """
    a = _symmetric(network)
    n = a.shape[0]
    rng = np.random.default_rng(seed)
    # random initial tie-break ordering via label permutation
    labels = rng.permutation(n).astype(np.int64)

    for _ in range(max_sweeps):
        # compress label space each sweep so the onehot stays narrow
        uniq, labels = np.unique(labels, return_inverse=True)
        k = len(uniq)
        onehot = sp.csr_matrix(
            (np.ones(n), (np.arange(n), labels)), shape=(n, k)
        )
        votes = (a @ onehot).tocsr()  # (n, k) weighted label votes
        # stay-put bias: half a vote for the current label damps flip-flop
        stay = sp.csr_matrix(
            (np.full(n, 0.5), (np.arange(n), labels)), shape=(n, k)
        )
        votes_csr = votes + stay
        new_labels = np.asarray(votes_csr.argmax(axis=1)).ravel()
        # vertices with no neighbors keep their own label
        degrees = np.diff(a.indptr)
        new_labels[degrees == 0] = labels[degrees == 0]
        changed = int((new_labels != labels).sum())
        labels = new_labels.astype(np.int64)
        if changed <= max(1, n // 1000):
            break
    # renumber 0..k-1
    _, labels = np.unique(labels, return_inverse=True)
    return labels.astype(np.int64)


def modularity(
    network: CollocationNetwork | sp.spmatrix, labels: np.ndarray
) -> float:
    """Newman weighted modularity Q of a vertex labeling.

    ``Q = Σ_c [ w_in(c)/W - (s(c)/2W)² ]`` with ``W`` the total edge
    weight, ``w_in`` the intra-community weight, and ``s`` the community
    strength (sum of vertex strengths).
    """
    a = _symmetric(network)
    labels = np.asarray(labels)
    if labels.shape != (a.shape[0],):
        raise AnalysisError("labels must cover every vertex")
    coo = sp.triu(a, k=1).tocoo()
    total_w = float(coo.data.sum())
    if total_w == 0:
        return 0.0
    intra = coo.data[labels[coo.row] == labels[coo.col]].sum()
    strength = np.asarray(a.sum(axis=1)).ravel()
    k = int(labels.max()) + 1
    comm_strength = np.bincount(labels, weights=strength, minlength=k)
    q = intra / total_w - float(
        np.sum((comm_strength / (2.0 * total_w)) ** 2)
    )
    return float(q)


def community_sizes(labels: np.ndarray) -> np.ndarray:
    """Community sizes, descending."""
    sizes = np.bincount(np.asarray(labels))
    return np.sort(sizes[sizes > 0])[::-1]
