"""Radius-k ego subgraphs (Figures 1 and 2).

"Local network structures can be observed by selecting individuals and
finding all adjacent vertices to create set V₁ and then all adjacent
vertices to V₁ to create set V₂.  The union V = V₁ ∪ V₂ contains all
vertices within a graph radius of two from the original selected
individual ... all edges between nodes in the set V are preserved."

The BFS runs directly on CSR index arrays; the induced subgraph keeps edge
weights so layouts can use collocation hours as spring strength.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..errors import AnalysisError
from ..core.network import CollocationNetwork

__all__ = ["EgoNetwork", "ego_network", "sample_ego_networks"]


@dataclass
class EgoNetwork:
    """An induced subgraph around a center person.

    Attributes
    ----------
    center:
        the sampled person id (global).
    persons:
        sorted global ids of all vertices within the radius (center
        included).
    matrix:
        symmetric weighted CSR over local indices aligned with
        ``persons``.
    radius:
        the BFS radius used.
    """

    center: int
    persons: np.ndarray
    matrix: sp.csr_matrix
    radius: int

    @property
    def n_nodes(self) -> int:
        return len(self.persons)

    @property
    def n_edges(self) -> int:
        return int(self.matrix.nnz // 2)

    @property
    def center_local(self) -> int:
        return int(np.searchsorted(self.persons, self.center))

    def degrees(self) -> np.ndarray:
        return np.diff(self.matrix.indptr).astype(np.int64)

    def density(self) -> float:
        n = self.n_nodes
        possible = n * (n - 1) / 2
        return self.n_edges / possible if possible else 0.0

    def to_networkx(self):
        """Weighted networkx.Graph with global person ids as node labels."""
        import networkx as nx

        coo = sp.triu(self.matrix, k=1).tocoo()
        g = nx.Graph()
        g.add_nodes_from(int(p) for p in self.persons)
        g.add_weighted_edges_from(
            (
                int(self.persons[i]),
                int(self.persons[j]),
                float(w),
            )
            for i, j, w in zip(coo.row, coo.col, coo.data)
        )
        return g


def ego_network(
    network: CollocationNetwork, person: int, radius: int = 2
) -> EgoNetwork:
    """Extract the induced subgraph within ``radius`` hops of ``person``."""
    if radius < 0:
        raise AnalysisError("radius must be >= 0")
    if not 0 <= person < network.n_persons:
        raise AnalysisError(f"person {person} outside population")
    sym = network.symmetric()
    frontier = np.array([person], dtype=np.int64)
    visited = {int(person)}
    for _ in range(radius):
        next_frontier: list[np.ndarray] = []
        for v in frontier:
            neigh = sym.indices[sym.indptr[v] : sym.indptr[v + 1]]
            next_frontier.append(neigh)
        if not next_frontier:
            break
        cand = np.unique(np.concatenate(next_frontier)) if next_frontier else np.empty(0, dtype=np.int64)
        new = np.array(
            [int(v) for v in cand if int(v) not in visited], dtype=np.int64
        )
        visited.update(int(v) for v in new)
        frontier = new
        if len(frontier) == 0:
            break
    persons = np.array(sorted(visited), dtype=np.int64)
    sub = sym[persons][:, persons].tocsr()
    return EgoNetwork(center=person, persons=persons, matrix=sub, radius=radius)


def sample_ego_networks(
    network: CollocationNetwork,
    n_samples: int,
    rng: np.random.Generator,
    radius: int = 2,
    min_degree: int = 1,
) -> list[EgoNetwork]:
    """Sample ego networks around random connected individuals (the
    paper's "randomly sampled individual").
    """
    degrees = network.degrees()
    eligible = np.flatnonzero(degrees >= min_degree)
    if len(eligible) == 0:
        raise AnalysisError("no vertices satisfy the degree threshold")
    picks = rng.choice(eligible, size=min(n_samples, len(eligible)), replace=False)
    return [ego_network(network, int(p), radius=radius) for p in picks]
