"""Age-group contact matrices from the collocation network.

Figure 5 splits the network *within* age groups; the natural completion —
and the standard epidemiological summary (POLYMOD-style mixing matrices) —
is the full group-by-group contact matrix: mean number of distinct
contacts (or collocated hours) a member of group *i* has with members of
group *j*.  The paper's conclusion asks for exactly such "additional
network statistics" to characterize the networks for downstream models
that consume networks as inputs.

Reciprocity is a built-in invariant: total i→j contact equals total j→i
contact (each edge is counted from both ends), which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AGE_GROUPS, age_group_labels
from ..core.network import CollocationNetwork
from ..errors import AnalysisError
from ..synthpop.person import PersonTable

__all__ = ["ContactMatrix", "contact_matrix"]


@dataclass
class ContactMatrix:
    """Group-by-group mixing summary.

    Attributes
    ----------
    labels:
        group names, ordered as in :data:`repro.config.AGE_GROUPS`.
    group_sizes:
        persons per group.
    total_contacts:
        ``(g, g)`` matrix of total contact pairs between groups (an edge
        between groups i≠j counts once in [i,j] and once in [j,i]; a
        within-group edge counts twice in [i,i] — endpoint convention).
    total_hours:
        same aggregation over collocated hours (edge weights).
    """

    labels: list[str]
    group_sizes: np.ndarray
    total_contacts: np.ndarray
    total_hours: np.ndarray

    @property
    def n_groups(self) -> int:
        return len(self.labels)

    def mean_contacts(self) -> np.ndarray:
        """Per-capita contacts: entry (i, j) = mean number of group-j
        contacts of a group-i member."""
        sizes = np.maximum(self.group_sizes, 1)[:, None]
        return self.total_contacts / sizes

    def mean_hours(self) -> np.ndarray:
        sizes = np.maximum(self.group_sizes, 1)[:, None]
        return self.total_hours / sizes

    def assortativity_fraction(self) -> np.ndarray:
        """Per group: fraction of contacts kept within the group."""
        totals = self.total_contacts.sum(axis=1)
        diag = np.diag(self.total_contacts)
        return np.divide(
            diag, totals, out=np.zeros_like(diag, dtype=float),
            where=totals > 0,
        )

    def report(self) -> str:
        lines = ["mean contacts per person, by age group (rows = ego group):"]
        header = "          " + "".join(f"{lb:>9}" for lb in self.labels)
        lines.append(header)
        mc = self.mean_contacts()
        for i, lb in enumerate(self.labels):
            row = "".join(f"{mc[i, j]:>9.1f}" for j in range(self.n_groups))
            lines.append(f"  {lb:>7} {row}")
        lines.append("within-group contact fraction: "
                     + ", ".join(
                         f"{lb}={f:.2f}"
                         for lb, f in zip(
                             self.labels, self.assortativity_fraction()
                         )
                     ))
        return "\n".join(lines)


def contact_matrix(
    network: CollocationNetwork, persons: PersonTable
) -> ContactMatrix:
    """Compute the age-group contact matrix of a collocation network."""
    if len(persons) != network.n_persons:
        raise AnalysisError("person table does not match network")
    groups = persons.age_group().astype(np.int64)
    g = len(AGE_GROUPS)
    coo = network.adjacency.tocoo()
    gi = groups[coo.row]
    gj = groups[coo.col]
    flat_ij = gi * g + gj
    flat_ji = gj * g + gi
    contacts = (
        np.bincount(flat_ij, minlength=g * g)
        + np.bincount(flat_ji, minlength=g * g)
    ).reshape(g, g)
    hours = (
        np.bincount(flat_ij, weights=coo.data, minlength=g * g)
        + np.bincount(flat_ji, weights=coo.data, minlength=g * g)
    ).reshape(g, g)
    sizes = np.bincount(groups, minlength=g)
    return ContactMatrix(
        labels=age_group_labels(),
        group_sizes=sizes,
        total_contacts=contacts.astype(np.int64),
        total_hours=hours.astype(np.int64),
    )
