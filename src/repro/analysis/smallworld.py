"""Small-world metrics: path lengths and the small-world coefficient.

The paper frames collocation networks against Watts–Strogatz small-world
[4] and scale-free [19] references ("Large clustering coefficients are
typically found in scale-free and Small-World networks compared to random
graphs").  This module quantifies that framing:

* :func:`sampled_path_lengths` — BFS shortest-path lengths from a vertex
  sample (exact all-pairs is infeasible at 10⁶ vertices; sampling is the
  standard estimator);
* :func:`small_world_sigma` — σ = (C/C_rand)/(L/L_rand) against a
  degree-matched Erdős–Rényi baseline; σ ≫ 1 indicates a small world.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import breadth_first_order

from ..core.network import CollocationNetwork
from ..errors import AnalysisError
from .clustering import local_clustering, mean_clustering

__all__ = ["PathLengthStats", "sampled_path_lengths", "small_world_sigma"]


@dataclass
class PathLengthStats:
    """Shortest-path statistics from a BFS sample."""

    mean_length: float
    max_length: int
    n_sources: int
    reachable_fraction: float


def _bfs_distances(adj: sp.csr_matrix, source: int) -> np.ndarray:
    """Hop distances from *source* (-1 for unreachable)."""
    order, predecessors = breadth_first_order(
        adj, source, directed=False, return_predecessors=True
    )
    n = adj.shape[0]
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    # walk the BFS tree in visitation order: dist[v] = dist[pred[v]] + 1
    for v in order[1:]:
        dist[v] = dist[predecessors[v]] + 1
    return dist


def sampled_path_lengths(
    network: CollocationNetwork | sp.spmatrix,
    n_sources: int,
    rng: np.random.Generator,
) -> PathLengthStats:
    """Estimate mean/max shortest path length by BFS from random sources."""
    adj = (
        network.symmetric()
        if isinstance(network, CollocationNetwork)
        else sp.csr_matrix(network)
    )
    n = adj.shape[0]
    degrees = np.diff(adj.indptr)
    eligible = np.flatnonzero(degrees > 0)
    if len(eligible) == 0:
        raise AnalysisError("network has no connected vertices")
    sources = rng.choice(eligible, size=min(n_sources, len(eligible)), replace=False)
    total = 0.0
    count = 0
    longest = 0
    reachable = 0
    for s in sources:
        dist = _bfs_distances(adj, int(s))
        found = dist > 0
        reachable += int(found.sum())
        if found.any():
            total += float(dist[found].sum())
            count += int(found.sum())
            longest = max(longest, int(dist[found].max()))
    if count == 0:
        raise AnalysisError("no finite path lengths found")
    return PathLengthStats(
        mean_length=total / count,
        max_length=longest,
        n_sources=len(sources),
        reachable_fraction=reachable / (len(sources) * max(n - 1, 1)),
    )


def small_world_sigma(
    network: CollocationNetwork,
    n_sources: int = 24,
    seed: int = 0,
) -> dict[str, float]:
    """σ = (C/C_rand) / (L/L_rand) against an Erdős–Rényi baseline with the
    same vertex and edge counts.

    Returns a dict with ``C``, ``C_rand``, ``L``, ``L_rand``, ``sigma``.
    σ ≫ 1 ⇒ small-world (high clustering, short paths).
    """
    from ..netgen import erdos_renyi

    rng = np.random.default_rng(seed)
    degrees = network.degrees()
    c = mean_clustering(local_clustering(network), degrees)
    paths = sampled_path_lengths(network, n_sources, rng)

    rand = erdos_renyi(network.n_persons, network.n_edges, rng)
    c_rand = mean_clustering(local_clustering(rand), rand.degrees())
    rand_paths = sampled_path_lengths(rand, n_sources, rng)

    c_rand = max(c_rand, 1e-9)
    l_ratio = paths.mean_length / max(rand_paths.mean_length, 1e-9)
    sigma = (c / c_rand) / max(l_ratio, 1e-9)
    return {
        "C": c,
        "C_rand": c_rand,
        "L": paths.mean_length,
        "L_rand": rand_paths.mean_length,
        "sigma": sigma,
    }
