"""Weighted network statistics and assortativity.

The paper's conclusion calls for exactly this: "Further exploration of
this approach to generate realistic social network structures will need to
identify additional network statistics and their relative contributions to
the features of the network."  The collocation network is inherently
weighted (hours collocated), so the natural additions are:

* :func:`strength_distribution` — vertex strength (total collocated
  hours), the weighted analogue of Figure 3;
* :func:`edge_weight_distribution` — how long pairs stay collocated
  (households ≈ weeks, venue strangers ≈ an hour);
* :func:`weighted_clustering` — Barrat et al.'s weighted local clustering;
* :func:`degree_assortativity` — Newman's degree-correlation coefficient
  (social networks are typically assortative).
"""

from __future__ import annotations

import numpy as np

from ..core.network import CollocationNetwork
from ..errors import AnalysisError
from .degree import DegreeDistribution, degree_distribution

__all__ = [
    "strength_distribution",
    "edge_weight_distribution",
    "weighted_clustering",
    "degree_assortativity",
]


def strength_distribution(network: CollocationNetwork) -> DegreeDistribution:
    """Distribution of vertex strength (total collocated hours/person)."""
    return degree_distribution(network.weighted_degrees())


def edge_weight_distribution(
    network: CollocationNetwork,
) -> tuple[np.ndarray, np.ndarray]:
    """``(weights, counts)``: how many pairs share w collocated hours."""
    data = network.adjacency.data
    if len(data) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    weights, counts = np.unique(data, return_counts=True)
    return weights.astype(np.int64), counts.astype(np.int64)


def weighted_clustering(
    network: CollocationNetwork, batch_rows: int = 4096
) -> np.ndarray:
    """Barrat weighted local clustering coefficient per vertex.

    ``c_w(i) = 1/(s_i (k_i - 1)) Σ_{jh} (w_ij + w_ih)/2 · a_ij a_ih a_jh``
    where ``s_i`` is strength and ``k_i`` degree.  Reduces to the binary
    coefficient when all weights are equal.
    """
    sym = network.symmetric().astype(np.float64)
    binary = sym.copy()
    binary.data = np.ones_like(binary.data)
    n = sym.shape[0]
    degrees = np.diff(sym.indptr).astype(np.int64)
    strength = np.asarray(sym.sum(axis=1)).ravel()

    coeff = np.zeros(n, dtype=np.float64)
    for lo in range(0, n, batch_rows):
        hi = min(n, lo + batch_rows)
        a_block = binary[lo:hi]
        w_block = sym[lo:hi]
        # triangle closure mask: which (i, j) participate in triangles,
        # weighted by the number of common neighbors h with a_jh = 1
        closure = (a_block @ binary).multiply(a_block)
        # Σ_j w_ij · (#closed wedges through j) accounts for (w_ij)/2 twice
        contrib = np.asarray(
            closure.multiply(w_block).sum(axis=1)
        ).ravel()
        can = degrees[lo:hi] >= 2
        denom = strength[lo:hi] * (degrees[lo:hi] - 1)
        vals = np.zeros(hi - lo)
        vals[can] = contrib[can] / denom[can]
        coeff[lo:hi] = vals
    if coeff.size and (coeff.min() < -1e-9 or coeff.max() > 1.0 + 1e-9):
        raise AnalysisError("weighted clustering outside [0, 1]")
    return np.clip(coeff, 0.0, 1.0)


def degree_assortativity(network: CollocationNetwork) -> float:
    """Newman degree assortativity r ∈ [-1, 1] (unweighted).

    Pearson correlation of degrees across edge endpoints; positive r means
    hubs link to hubs (typical of social networks).
    """
    degrees = network.degrees().astype(np.float64)
    coo = network.adjacency.tocoo()
    if coo.nnz == 0:
        raise AnalysisError("assortativity undefined on an empty network")
    x = degrees[coo.row]
    y = degrees[coo.col]
    # undirected: each edge contributes both orientations
    xs = np.concatenate([x, y])
    ys = np.concatenate([y, x])
    mx = xs.mean()
    num = np.mean(xs * ys) - mx * mx
    den = np.mean(xs * xs) - mx * mx
    if den == 0:
        return 0.0
    return float(num / den)
