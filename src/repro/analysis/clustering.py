"""Local clustering coefficient (Figure 4).

"The local clustering coefficient, or transitivity, is calculated for each
person vertex in the collocation network and describes the local
connectedness of each vertex's neighbors via the ratio of connected edge
triangles and triples centered on the vertex."

Computed sparsely: with binary symmetric adjacency *A*, the triangle count
through vertex *i* is ``(A·A ∘ A) 1 / 2`` (elementwise product with *A*
keeps only wedges that close).  Runs in sparse matmul time — no per-vertex
Python loops — and is cross-validated against networkx in the tests.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import AnalysisError
from ..core.network import CollocationNetwork

__all__ = ["local_clustering", "clustering_histogram", "mean_clustering"]


def _binary_symmetric(network: CollocationNetwork | sp.spmatrix) -> sp.csr_matrix:
    sym = (
        network.symmetric()
        if isinstance(network, CollocationNetwork)
        else sp.csr_matrix(network)
    )
    binary = sym.copy()
    binary.data = np.ones_like(binary.data, dtype=np.int64)
    return binary


def local_clustering(
    network: CollocationNetwork | sp.spmatrix,
    batch_rows: int = 8192,
) -> np.ndarray:
    """Per-vertex local clustering coefficient in [0, 1].

    Vertices with degree < 2 get coefficient 0 (consistent with igraph's
    ``transitivity_local`` NaN→excluded convention being mapped to 0 for
    histogramming).

    ``batch_rows`` bounds the memory of the ``A·A`` intermediate: rows are
    processed in blocks, so the full triangle matrix never materializes.
    """
    a = _binary_symmetric(network)
    n = a.shape[0]
    degrees = np.diff(a.indptr).astype(np.int64)
    triangles = np.zeros(n, dtype=np.int64)
    for lo in range(0, n, batch_rows):
        hi = min(n, lo + batch_rows)
        block = a[lo:hi]  # (rows, n)
        wedge = block @ a  # paths of length 2 from each row vertex
        closed = wedge.multiply(block)  # keep only wedges closing an edge
        triangles[lo:hi] = np.asarray(closed.sum(axis=1)).ravel() // 2
    coeff = np.zeros(n, dtype=np.float64)
    can = degrees >= 2
    possible = degrees[can] * (degrees[can] - 1) / 2
    coeff[can] = triangles[can] / possible
    if coeff.size and (coeff.max() > 1.0 + 1e-9 or coeff.min() < 0):
        raise AnalysisError("clustering coefficient outside [0, 1]")
    return np.clip(coeff, 0.0, 1.0)


def clustering_histogram(
    coefficients: np.ndarray,
    n_bins: int = 20,
    degrees: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of local clustering coefficients (Figure 4).

    Returns ``(bin_edges, counts)`` with ``n_bins`` equal bins over [0, 1].
    When ``degrees`` is given, vertices with degree < 2 are excluded (they
    have no defined coefficient), matching the paper's per-person-vertex
    histogram.
    """
    coefficients = np.asarray(coefficients, dtype=np.float64)
    if degrees is not None:
        coefficients = coefficients[np.asarray(degrees) >= 2]
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    counts, _ = np.histogram(coefficients, bins=edges)
    return edges, counts.astype(np.int64)


def mean_clustering(
    coefficients: np.ndarray, degrees: np.ndarray | None = None
) -> float:
    """Mean local clustering over vertices with a defined coefficient."""
    coefficients = np.asarray(coefficients, dtype=np.float64)
    if degrees is not None:
        coefficients = coefficients[np.asarray(degrees) >= 2]
    return float(coefficients.mean()) if coefficients.size else 0.0
