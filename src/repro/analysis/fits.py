"""Distribution fits for the Figure 3 reference curves.

The paper overlays three forms on the empirical degree distribution:

* power law            ``P(k) ~ k^(-a)``          (paper line: a = 1.5);
* truncated power law  ``P(k) ~ k^(-a) e^(-k/kc)`` (paper: a = 1.25,
  kc = 10³) — "does appear to better fit the tail";
* exponential          ``P(k) ~ e^(-k/kc)`` — "captures the tail roll off
  better but is still unable to capture the more complex characteristics".

Fits are least squares in log space over the empirical support (the same
visual criterion the paper uses), plus a discrete MLE for the pure power
law (Clauset-style) for robustness.  Each :class:`FitResult` carries its
log-space residual error so the paper's qualitative ranking — truncated PL
beats pure PL and exponential on the tail — is a testable assertion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import FitError
from .degree import DegreeDistribution

__all__ = [
    "FitResult",
    "fit_power_law",
    "fit_truncated_power_law",
    "fit_exponential",
    "power_law_mle",
    "compare_fits",
]


@dataclass
class FitResult:
    """A fitted functional form and its quality."""

    model: str
    params: dict[str, float]
    log_rss: float  # residual sum of squares in log10 space
    n_points: int
    predict: Callable[[np.ndarray], np.ndarray]

    @property
    def rms_log_error(self) -> float:
        """Root-mean-square error in log10 space (decades)."""
        return float(np.sqrt(self.log_rss / self.n_points)) if self.n_points else 0.0

    def tail_error(self, dist: DegreeDistribution, tail_fraction: float = 0.5) -> float:
        """RMS log error restricted to the top-degree tail."""
        k, p = _support(dist)
        cut = int(len(k) * (1 - tail_fraction))
        k_t, p_t = k[cut:], p[cut:]
        if len(k_t) == 0:
            return 0.0
        pred = np.maximum(self.predict(k_t), 1e-300)
        resid = np.log10(p_t) - np.log10(pred)
        return float(np.sqrt(np.mean(resid**2)))

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v:.4g}" for k, v in self.params.items())
        return f"FitResult({self.model}: {params}, rms={self.rms_log_error:.3f})"


def _support(dist: DegreeDistribution) -> tuple[np.ndarray, np.ndarray]:
    """(k, P(k)) over observed degrees with nonzero probability."""
    k = dist.degrees.astype(np.float64)
    p = dist.fractions
    good = (k >= 1) & (p > 0)
    k, p = k[good], p[good]
    if len(k) < 3:
        raise FitError(f"need at least 3 support points, have {len(k)}")
    return k, p


def _lstsq(design: np.ndarray, target: np.ndarray) -> np.ndarray:
    coef, *_ = np.linalg.lstsq(design, target, rcond=None)
    return coef


def fit_power_law(dist: DegreeDistribution) -> FitResult:
    """Least-squares ``log P = c - a log k``."""
    k, p = _support(dist)
    logk, logp = np.log10(k), np.log10(p)
    design = np.stack([np.ones_like(logk), -logk], axis=1)
    c, a = _lstsq(design, logp)
    pred = 10**c * k ** (-a)
    rss = float(np.sum((logp - np.log10(pred)) ** 2))

    def predict(kk: np.ndarray) -> np.ndarray:
        return 10**c * np.asarray(kk, dtype=float) ** (-a)

    return FitResult(
        model="power_law",
        params={"a": float(a), "c": float(c)},
        log_rss=rss,
        n_points=len(k),
        predict=predict,
    )


def fit_truncated_power_law(dist: DegreeDistribution) -> FitResult:
    """Least-squares ``log P = c - a log k - k/(kc ln 10)``.

    Linear in the unknowns with regressors ``(1, log k, k)``; the paper's
    form ``P(k) ~ k^-a e^(-k/kc)``.
    """
    k, p = _support(dist)
    logk, logp = np.log10(k), np.log10(p)
    design = np.stack([np.ones_like(logk), -logk, -k], axis=1)
    c, a, b = _lstsq(design, logp)
    # b = 1 / (kc * ln(10)) in log10 space
    if b <= 0:
        # tail bends upward: degenerate, fall back to pure power law shape
        kc = np.inf
    else:
        kc = 1.0 / (b * np.log(10.0))

    def predict(kk: np.ndarray) -> np.ndarray:
        kk = np.asarray(kk, dtype=float)
        out = 10**c * kk ** (-a)
        if np.isfinite(kc):
            out = out * np.exp(-kk / kc)
        return out

    pred = np.maximum(predict(k), 1e-300)
    rss = float(np.sum((logp - np.log10(pred)) ** 2))
    return FitResult(
        model="truncated_power_law",
        params={"a": float(a), "kc": float(kc), "c": float(c)},
        log_rss=rss,
        n_points=len(k),
        predict=predict,
    )


def fit_exponential(dist: DegreeDistribution) -> FitResult:
    """Least-squares ``log P = c - k/(kc ln 10)`` (paper's e^(-k/kc))."""
    k, p = _support(dist)
    logp = np.log10(p)
    design = np.stack([np.ones_like(k), -k], axis=1)
    c, b = _lstsq(design, logp)
    kc = 1.0 / (b * np.log(10.0)) if b > 0 else np.inf

    def predict(kk: np.ndarray) -> np.ndarray:
        kk = np.asarray(kk, dtype=float)
        if np.isfinite(kc):
            return 10**c * np.exp(-kk / kc)
        return np.full_like(kk, 10**c, dtype=float)

    pred = np.maximum(predict(k), 1e-300)
    rss = float(np.sum((logp - np.log10(pred)) ** 2))
    return FitResult(
        model="exponential",
        params={"kc": float(kc), "c": float(c)},
        log_rss=rss,
        n_points=len(k),
        predict=predict,
    )


def power_law_mle(degrees: np.ndarray, k_min: int = 1) -> float:
    """Discrete power-law MLE exponent (Clauset–Shalizi–Newman approx).

    ``a = 1 + n / Σ ln(k_i / (k_min - 0.5))`` over degrees ≥ k_min.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    tail = degrees[degrees >= k_min]
    if len(tail) < 2:
        raise FitError("too few observations for MLE")
    denom = np.sum(np.log(tail / (k_min - 0.5)))
    if denom <= 0:
        raise FitError("degenerate MLE denominator")
    return float(1.0 + len(tail) / denom)


def bootstrap_exponent_ci(
    degrees: np.ndarray,
    n_boot: int = 200,
    k_min: int = 1,
    seed: int = 0,
    confidence: float = 0.95,
) -> tuple[float, float, float]:
    """Bootstrap confidence interval for the power-law MLE exponent.

    Returns ``(a_hat, lo, hi)``; resamples the degree vector with
    replacement ``n_boot`` times.  Quantifies how (un)certain the Figure 3
    exponent is — the paper reports point values only.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    degrees = degrees[degrees >= k_min]
    if len(degrees) < 2:
        raise FitError("too few observations to bootstrap")
    rng = np.random.default_rng(seed)
    a_hat = power_law_mle(degrees, k_min)
    boots = np.empty(n_boot)
    for b in range(n_boot):
        sample = rng.choice(degrees, size=len(degrees), replace=True)
        boots[b] = power_law_mle(sample, k_min)
    alpha = (1.0 - confidence) / 2
    lo, hi = np.quantile(boots, [alpha, 1.0 - alpha])
    return float(a_hat), float(lo), float(hi)


def compare_fits(dist: DegreeDistribution) -> dict[str, FitResult]:
    """Fit all three Figure 3 forms; keys: ``power_law``,
    ``truncated_power_law``, ``exponential``."""
    return {
        "power_law": fit_power_law(dist),
        "truncated_power_law": fit_truncated_power_law(dist),
        "exponential": fit_exponential(dist),
    }
