"""Place → rank partitioning.

chiSIM distributes places across processes and lets agents migrate: "A
spatially partitioned set of locations is developed that assigns locations
to compute processes with the objective of minimizing person agent
movement between processes."

This module provides:

* baselines: :func:`random_partition`, :func:`round_robin_partition`;
* :func:`spatial_partition` — weighted recursive coordinate bisection
  (RCB), the classic geometric HPC partitioner;
* :func:`refine_partition` — greedy movement-graph refinement
  (Kernighan–Lin-style single moves under a balance constraint);
* evaluation: :func:`movement_matrix` and :func:`estimate_migration`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..errors import PartitionError

__all__ = [
    "PlacePartition",
    "random_partition",
    "round_robin_partition",
    "spatial_partition",
    "refine_partition",
    "movement_matrix",
    "estimate_migration",
]


@dataclass
class PlacePartition:
    """An assignment of every place to a rank."""

    assignment: np.ndarray  # (n_places,) int32
    n_ranks: int

    def __post_init__(self) -> None:
        self.assignment = np.asarray(self.assignment, dtype=np.int32)
        if self.assignment.ndim != 1:
            raise PartitionError("assignment must be 1-D")
        if self.n_ranks < 1:
            raise PartitionError("n_ranks must be >= 1")
        if self.assignment.size:
            lo, hi = int(self.assignment.min()), int(self.assignment.max())
            if lo < 0 or hi >= self.n_ranks:
                raise PartitionError(
                    f"assignment uses ranks [{lo}, {hi}] outside "
                    f"[0, {self.n_ranks})"
                )

    @property
    def n_places(self) -> int:
        return len(self.assignment)

    def places_of_rank(self, rank: int) -> np.ndarray:
        return np.flatnonzero(self.assignment == rank)

    def rank_counts(self) -> np.ndarray:
        return np.bincount(self.assignment, minlength=self.n_ranks)

    def rank_weights(self, weights: np.ndarray) -> np.ndarray:
        """Total place weight per rank (e.g. expected occupancy)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != self.assignment.shape:
            raise PartitionError("weights must align with places")
        return np.bincount(
            self.assignment, weights=weights, minlength=self.n_ranks
        )

    def imbalance(self, weights: np.ndarray | None = None) -> float:
        """max/mean load ratio (1.0 = perfectly balanced).

        1.0 whenever the ratio is meaningless — no places, zero total
        weight (ranks received only empty places), or NaN weights — so
        callers gating on ``imbalance <= tol`` never divide by zero.
        """
        loads = (
            self.rank_counts().astype(np.float64)
            if weights is None
            else self.rank_weights(weights)
        )
        if loads.size == 0:
            return 1.0
        mean = float(loads.mean())
        if not np.isfinite(mean) or mean <= 0:
            return 1.0
        return float(loads.max()) / mean


def random_partition(
    n_places: int, n_ranks: int, rng: np.random.Generator
) -> PlacePartition:
    """Uniform random assignment — the paper's implicit worst case."""
    return PlacePartition(rng.integers(0, n_ranks, n_places), n_ranks)


def round_robin_partition(n_places: int, n_ranks: int) -> PlacePartition:
    """Cyclic assignment: perfectly count-balanced, spatially oblivious."""
    return PlacePartition(np.arange(n_places) % n_ranks, n_ranks)


def spatial_partition(
    coords: np.ndarray,
    weights: np.ndarray | None,
    n_ranks: int,
) -> PlacePartition:
    """Weighted recursive coordinate bisection.

    Splits the place set along the widest coordinate axis so each side
    carries weight proportional to its share of ranks, then recurses.
    Handles any ``n_ranks`` (not just powers of two).  Geographic
    contiguity of the parts is what keeps home→work→venue moves mostly
    rank-local.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] < 1:
        raise PartitionError("coords must be (n_places, d)")
    n_places = len(coords)
    w = (
        np.ones(n_places)
        if weights is None
        else np.asarray(weights, dtype=np.float64)
    )
    if w.shape != (n_places,):
        raise PartitionError("weights must align with coords")
    if np.any(w < 0):
        raise PartitionError("weights must be non-negative")
    assignment = np.empty(n_places, dtype=np.int32)

    # iterative stack of (place_indices, rank_lo, rank_hi)
    stack: list[tuple[np.ndarray, int, int]] = [
        (np.arange(n_places), 0, n_ranks)
    ]
    while stack:
        idx, lo, hi = stack.pop()
        k = hi - lo
        if k == 1:
            assignment[idx] = lo
            continue
        if len(idx) == 0:
            continue
        k1 = k // 2
        sub = coords[idx]
        spans = sub.max(axis=0) - sub.min(axis=0)
        axis = int(np.argmax(spans))
        order = np.argsort(sub[:, axis], kind="stable")
        sorted_idx = idx[order]
        cw = np.cumsum(w[sorted_idx])
        total = cw[-1]
        if total > 0:
            target = total * (k1 / k)
            cut = int(np.searchsorted(cw, target))
        else:
            # all-zero weight in this region (only empty places): bisect
            # by count so each rank still gets an even place share instead
            # of one rank inheriting the whole region
            cut = (len(sorted_idx) * k1) // k
        # keep both sides non-empty when possible
        cut = max(1, min(cut, len(sorted_idx) - 1)) if len(sorted_idx) > 1 else 0
        stack.append((sorted_idx[:cut], lo, lo + k1))
        stack.append((sorted_idx[cut:], lo + k1, hi))
    return PlacePartition(assignment, n_ranks)


def movement_matrix(place_grid: np.ndarray, n_places: int) -> sp.csr_matrix:
    """Count agent moves between places from an hourly place grid.

    Entry ``(p, q)`` is the number of person-hours transitioning from place
    *p* to place *q* (p ≠ q) over the grid.  This is the edge-weighted
    movement graph the refinement minimizes the cut of.
    """
    place_grid = np.asarray(place_grid)
    if place_grid.ndim != 2:
        raise PartitionError("place_grid must be (n_persons, n_hours)")
    src = place_grid[:, :-1].ravel()
    dst = place_grid[:, 1:].ravel()
    moved = src != dst
    src, dst = src[moved].astype(np.int64), dst[moved].astype(np.int64)
    if src.size and max(int(src.max()), int(dst.max())) >= n_places:
        raise PartitionError("place_grid references place outside table")
    data = np.ones(len(src), dtype=np.int64)
    mat = sp.coo_matrix((data, (src, dst)), shape=(n_places, n_places))
    return mat.tocsr()


def estimate_migration(
    partition: PlacePartition, movement: sp.spmatrix
) -> int:
    """Total moves that cross rank boundaries under *partition*."""
    coo = movement.tocoo()
    ranks = partition.assignment
    cross = ranks[coo.row] != ranks[coo.col]
    return int(coo.data[cross].sum())


def refine_partition(
    partition: PlacePartition,
    movement: sp.spmatrix,
    weights: np.ndarray | None = None,
    sweeps: int = 4,
    balance_tol: float = 1.10,
) -> PlacePartition:
    """Greedy KL-style refinement of a partition against a movement graph.

    Each sweep computes, for every place, its movement affinity to every
    rank; places whose best foreign rank beats their current rank are moved
    in descending gain order while per-rank weight stays within
    ``balance_tol`` × mean.  Converges quickly on geometric partitions and
    is the laptop-scale stand-in for the paper's offline partition tuning.
    """
    n_places = partition.n_places
    w = (
        np.ones(n_places)
        if weights is None
        else np.asarray(weights, dtype=np.float64)
    )
    sym = (movement + movement.T).tocsr()
    assignment = partition.assignment.copy()
    n_ranks = partition.n_ranks
    if n_ranks == 1:
        return PlacePartition(assignment, 1)
    mean_load = w.sum() / n_ranks
    cap = balance_tol * mean_load

    for _ in range(sweeps):
        # affinity[p, r] = movement weight between place p and rank r
        onehot = sp.csr_matrix(
            (
                np.ones(n_places),
                (np.arange(n_places), assignment),
            ),
            shape=(n_places, n_ranks),
        )
        affinity = np.asarray((sym @ onehot).todense())
        current = affinity[np.arange(n_places), assignment]
        affinity[np.arange(n_places), assignment] = -np.inf
        best_rank = np.argmax(affinity, axis=1)
        best_aff = affinity[np.arange(n_places), best_rank]
        gain = best_aff - current
        candidates = np.flatnonzero(gain > 0)
        if len(candidates) == 0:
            break
        candidates = candidates[np.argsort(-gain[candidates])]
        loads = np.bincount(assignment, weights=w, minlength=n_ranks)
        moved = 0
        for p in candidates:
            dst = int(best_rank[p])
            src = int(assignment[p])
            if dst == src:
                continue
            if loads[dst] + w[p] > cap:
                continue
            loads[dst] += w[p]
            loads[src] -= w[p]
            assignment[p] = dst
            moved += 1
        if moved == 0:
            break
    return PlacePartition(assignment, n_ranks)
