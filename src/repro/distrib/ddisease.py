"""Distributed SEIR epidemic on the rank-based model.

chiSIM is "an extension of an infectious disease transmission model", and
in the distributed setting the disease layer is what makes place ownership
semantically powerful: **all occupants of a place are hosted by the
place's owning rank**, so hourly transmission is computed entirely
rank-locally — no halo exchange — and an agent's disease state simply
travels inside its migration payload.

Differences from the serial :class:`~repro.sim.disease.DiseaseModel`:

* each rank draws from its own spawned RNG stream, so trajectories vary
  with ``n_ranks`` (statistically, not structurally — the conservation
  and locality invariants below hold for every rank count);
* global S/E/I/R counts are produced per hour with an ``allreduce``, the
  aggregate-observer pattern of a real MPI epidemic code.

Invariants (tested): population conservation (S+E+I+R = N every hour),
rank-local transmission (every infection names an infector hosted at the
same place that hour), and monotone non-increasing susceptibles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import HOURS_PER_DAY, HOURS_PER_WEEK, DiseaseConfig, SimulationConfig
from ..errors import SimulationError
from ..sim.disease import DiseaseState, TransmissionRecord
from ..synthpop.generator import SyntheticPopulation
from .comm import Communicator, TrafficStats
from .dmodel import _ScheduleCache
from .partition import PlacePartition
from .simcluster import SimCluster

__all__ = ["DistributedEpidemicSimulation", "EpidemicRunResult"]

#: migration payload with disease state on board
EPI_MIGRANT_DTYPE = np.dtype(
    [
        ("person", "<u4"),
        ("place", "<u4"),
        ("state", "<u1"),
        ("timer", "<i4"),
        ("infected_at", "<i8"),
    ]
)


@dataclass
class EpidemicRunResult:
    """Output of a distributed epidemic run."""

    n_ranks: int
    duration_hours: int
    seir_per_hour: np.ndarray  # (duration, 4) global S/E/I/R counts
    transmissions: list[TransmissionRecord]
    patient_zeros: list[int]
    final_state: np.ndarray  # (n_persons,) uint8 DiseaseState values
    infected_at: np.ndarray  # (n_persons,) int64, -1 = never
    traffic: TrafficStats = field(default_factory=TrafficStats)

    @property
    def attack_rate(self) -> float:
        return float(np.count_nonzero(self.infected_at >= 0)) / len(
            self.final_state
        )

    def peak_infectious(self) -> tuple[int, int]:
        inf = self.seir_per_hour[:, int(DiseaseState.INFECTIOUS)]
        hour = int(np.argmax(inf))
        return hour, int(inf[hour])


class DistributedEpidemicSimulation:
    """SEIR dynamics over the distributed chiSIM-like model.

    Parameters mirror :class:`~repro.distrib.dmodel.DistributedSimulation`
    but ``config.disease`` is required here.
    """

    def __init__(
        self,
        population: SyntheticPopulation,
        config: SimulationConfig,
        partition: PlacePartition,
    ) -> None:
        if config.disease is None:
            raise SimulationError("config.disease is required")
        if partition.n_places != population.n_places:
            raise SimulationError("partition does not cover the place table")
        if partition.n_ranks != config.n_ranks:
            raise SimulationError("partition/config rank count mismatch")
        self.population = population
        self.config = config
        self.partition = partition

    def run(self) -> EpidemicRunResult:
        duration = self.config.duration_hours
        n_ranks = self.config.n_ranks
        n_persons = self.population.n_persons
        assignment = self.partition.assignment
        disease_cfg: DiseaseConfig = self.config.disease  # type: ignore[assignment]
        cache = _ScheduleCache(
            self.population.schedule_generator(self.config.schedule)
        )
        seed = self.population.seed

        # seed cases chosen globally (rank-independent)
        seed_rng = np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=(0xE91,))
        )
        if disease_cfg.initial_infected > n_persons:
            raise SimulationError("more initial infections than persons")
        zeros = (
            seed_rng.choice(n_persons, disease_cfg.initial_infected, replace=False)
            if disease_cfg.initial_infected
            else np.empty(0, dtype=np.int64)
        )
        zero_set = np.zeros(n_persons, dtype=bool)
        zero_set[zeros] = True

        def sample_duration(
            rng: np.random.Generator, days: float, n: int
        ) -> np.ndarray:
            hours = rng.exponential(days * HOURS_PER_DAY, n)
            return np.maximum(1, hours).astype(np.int32)

        def rank_fn(comm: Communicator):
            rank = comm.rank
            rng = np.random.default_rng(
                np.random.SeedSequence(seed, spawn_key=(0xD0D0, rank))
            )
            week = cache.week(0)
            place0 = week.place[:, 0]
            mine = assignment[place0.astype(np.int64)] == rank
            ids = np.flatnonzero(mine).astype(np.uint32)
            cur_place = place0[ids].astype(np.uint32)
            state = np.full(len(ids), int(DiseaseState.SUSCEPTIBLE), np.uint8)
            timer = np.zeros(len(ids), dtype=np.int32)
            infected_at = np.full(len(ids), -1, dtype=np.int64)
            hosted_zero = zero_set[ids]
            if hosted_zero.any():
                k = int(hosted_zero.sum())
                state[hosted_zero] = int(DiseaseState.INFECTIOUS)
                timer[hosted_zero] = sample_duration(
                    rng, disease_cfg.infectious_days, k
                )
                infected_at[hosted_zero] = 0

            transmissions: list[TransmissionRecord] = []
            seir_hours = np.zeros((duration, 4), dtype=np.int64)

            for hour in range(duration):
                if hour > 0:
                    week_index, hour_of_week = divmod(hour, HOURS_PER_WEEK)
                    if hour_of_week == 0 or hour == 1:
                        week = cache.week(week_index)
                    new_place = week.place[:, hour_of_week][ids].astype(
                        np.uint32
                    )
                    cur_place = new_place
                    dest = assignment[cur_place.astype(np.int64)]
                    leaving = dest != rank
                    payloads: list[np.ndarray | None] = [None] * comm.size
                    if leaving.any():
                        lv = np.flatnonzero(leaving)
                        dest_lv = dest[lv]
                        order = np.argsort(dest_lv, kind="stable")
                        lv = lv[order]
                        dest_lv = dest_lv[order]
                        bounds = np.searchsorted(
                            dest_lv, np.arange(comm.size + 1)
                        )
                        for r in range(comm.size):
                            lo, hi = bounds[r], bounds[r + 1]
                            if hi > lo:
                                rowsel = lv[lo:hi]
                                out = np.empty(
                                    len(rowsel), dtype=EPI_MIGRANT_DTYPE
                                )
                                out["person"] = ids[rowsel]
                                out["place"] = cur_place[rowsel]
                                out["state"] = state[rowsel]
                                out["timer"] = timer[rowsel]
                                out["infected_at"] = infected_at[rowsel]
                                payloads[r] = out
                        keep = ~leaving
                        ids = ids[keep]
                        cur_place = cur_place[keep]
                        state = state[keep]
                        timer = timer[keep]
                        infected_at = infected_at[keep]
                    received = comm.alltoall(payloads)
                    parts = [
                        np.asarray(p, dtype=EPI_MIGRANT_DTYPE)
                        for p in received
                        if p is not None and len(p)
                    ]
                    if parts:
                        inc = (
                            np.concatenate(parts) if len(parts) > 1 else parts[0]
                        )
                        ids = np.concatenate([ids, inc["person"]])
                        cur_place = np.concatenate([cur_place, inc["place"]])
                        state = np.concatenate([state, inc["state"]])
                        timer = np.concatenate([timer, inc["timer"]])
                        infected_at = np.concatenate(
                            [infected_at, inc["infected_at"]]
                        )

                # --- rank-local SEIR step on hosted agents ---
                active = state != int(DiseaseState.SUSCEPTIBLE)
                timer[active] -= 1
                expired = timer <= 0
                e2i = expired & (state == int(DiseaseState.EXPOSED))
                i2r = expired & (state == int(DiseaseState.INFECTIOUS))
                if e2i.any():
                    state[e2i] = int(DiseaseState.INFECTIOUS)
                    timer[e2i] = sample_duration(
                        rng, disease_cfg.infectious_days, int(e2i.sum())
                    )
                if i2r.any():
                    state[i2r] = int(DiseaseState.RECOVERED)

                infectious = state == int(DiseaseState.INFECTIOUS)
                susceptible = state == int(DiseaseState.SUSCEPTIBLE)
                if infectious.any() and susceptible.any():
                    places_local = cur_place.astype(np.int64)
                    n_pl = int(places_local.max()) + 1
                    inf_count = np.bincount(
                        places_local[infectious], minlength=n_pl
                    )
                    sus_idx = np.flatnonzero(susceptible)
                    k = inf_count[places_local[sus_idx]]
                    prob = 1.0 - (1.0 - disease_cfg.transmissibility) ** k
                    hit = rng.random(len(sus_idx)) < prob
                    newly = sus_idx[hit]
                    if len(newly):
                        state[newly] = int(DiseaseState.EXPOSED)
                        timer[newly] = sample_duration(
                            rng, disease_cfg.incubation_days, len(newly)
                        )
                        infected_at[newly] = hour
                        inf_idx = np.flatnonzero(infectious)
                        inf_places = places_local[inf_idx]
                        order = np.argsort(inf_places, kind="stable")
                        sorted_places = inf_places[order]
                        for row in newly:
                            plc = int(places_local[row])
                            lo = np.searchsorted(sorted_places, plc, "left")
                            hi = np.searchsorted(sorted_places, plc, "right")
                            pick = int(order[rng.integers(lo, hi)])
                            transmissions.append(
                                TransmissionRecord(
                                    hour=hour,
                                    place=plc,
                                    infected=int(ids[row]),
                                    infector=int(ids[inf_idx[pick]]),
                                )
                            )

                # --- global aggregate (the MPI observer pattern) ---
                local_counts = np.bincount(state, minlength=4).astype(np.int64)
                seir_hours[hour] = comm.allreduce_sum(local_counts)

            return ids, state, infected_at, transmissions, seir_hours

        cluster = SimCluster(n_ranks)
        result = cluster.run(rank_fn)

        final_state = np.zeros(n_persons, dtype=np.uint8)
        infected_at = np.full(n_persons, -1, dtype=np.int64)
        transmissions: list[TransmissionRecord] = []
        hosted_total = 0
        seir = None
        for ids, state, inf_at, trans, seir_hours in result.returns:
            final_state[ids] = state
            infected_at[ids] = inf_at
            transmissions.extend(trans)
            hosted_total += len(ids)
            seir = seir_hours  # identical on every rank (allreduced)
        if hosted_total != n_persons:
            raise SimulationError("agents lost during epidemic migration")
        transmissions.sort(key=lambda t: t.hour)
        return EpidemicRunResult(
            n_ranks=n_ranks,
            duration_hours=duration,
            seir_per_hour=seir,
            transmissions=transmissions,
            patient_zeros=[int(z) for z in zeros],
            final_state=final_state,
            infected_at=infected_at,
            traffic=result.total_traffic,
        )
