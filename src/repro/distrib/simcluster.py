"""In-process simulated cluster of lock-stepped ranks.

Runs an SPMD function on *n* ranks, each a Python thread with its own
:class:`~repro.distrib.comm.Communicator`.  Because rank functions only
interact at collectives (which are barrier-synchronized) and otherwise
touch only rank-private state, results are deterministic regardless of OS
thread scheduling — which is what makes the serial-vs-distributed
equivalence test meaningful.

Threads, not processes: the simulated cluster exists to *model* rank
topology, place ownership, and communication volume, not to win wall-clock
speed (numpy releases the GIL for large kernels anyway; real task-parallel
speedup lives in :class:`~repro.distrib.taskpool.ProcessPool`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..errors import CommError
from .comm import Communicator, TrafficStats, _SharedBoard

__all__ = ["SimCluster", "ClusterRunResult"]


@dataclass
class ClusterRunResult:
    """Return values and traffic from one SPMD run."""

    returns: list[Any]
    traffic: list[TrafficStats]

    @property
    def total_traffic(self) -> TrafficStats:
        if not self.traffic:
            return TrafficStats()
        return self.traffic[0].merged(self.traffic[1:])


class SimCluster:
    """A simulated cluster of ``n_ranks`` lock-stepped ranks.

    Example
    -------
    >>> cluster = SimCluster(4)
    >>> def rank_fn(comm):
    ...     return comm.allreduce_sum(comm.rank)
    >>> cluster.run(rank_fn).returns
    [6, 6, 6, 6]
    """

    def __init__(self, n_ranks: int) -> None:
        if n_ranks < 1:
            raise CommError(f"cluster needs at least one rank, got {n_ranks}")
        self.n_ranks = n_ranks

    def run(
        self,
        rank_fn: Callable[..., Any],
        rank_args: Sequence[tuple] | None = None,
        timeout: float | None = 600.0,
    ) -> ClusterRunResult:
        """Execute ``rank_fn(comm, *rank_args[rank])`` on every rank.

        Any rank raising propagates the first exception to the caller after
        breaking the barrier so sibling ranks do not deadlock.
        """
        if rank_args is not None and len(rank_args) != self.n_ranks:
            raise CommError(
                f"rank_args must have {self.n_ranks} entries, got {len(rank_args)}"
            )
        board = _SharedBoard(self.n_ranks)
        comms = [Communicator(r, board) for r in range(self.n_ranks)]
        returns: list[Any] = [None] * self.n_ranks
        errors: list[tuple[int, BaseException]] = []
        lock = threading.Lock()

        def runner(rank: int) -> None:
            args = rank_args[rank] if rank_args is not None else ()
            try:
                returns[rank] = rank_fn(comms[rank], *args)
            except BaseException as exc:  # noqa: BLE001 - rethrown below
                with lock:
                    errors.append((rank, exc))
                board.barrier.abort()

        if self.n_ranks == 1:
            # fast path, also keeps single-rank runs on the caller's stack
            runner(0)
        else:
            threads = [
                threading.Thread(
                    target=runner, args=(rank,), name=f"simrank-{rank}", daemon=True
                )
                for rank in range(self.n_ranks)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=timeout)
                if t.is_alive():
                    board.barrier.abort()
                    raise CommError(
                        f"rank thread {t.name} did not finish within {timeout}s"
                    )

        if errors:
            errors.sort(key=lambda e: e[0])
            rank, exc = errors[0]
            if isinstance(exc, CommError) and len(errors) > 1:
                # prefer the root-cause error over secondary broken barriers
                for r, e in errors:
                    if not isinstance(e, CommError):
                        rank, exc = r, e
                        break
            raise CommError(f"rank {rank} failed: {exc!r}") from exc
        return ClusterRunResult(
            returns=returns, traffic=[c.stats for c in comms]
        )
