"""In-process simulated cluster of lock-stepped ranks.

Runs an SPMD function on *n* ranks, each a Python thread with its own
:class:`~repro.distrib.comm.Communicator`.  Because rank functions only
interact at collectives (which are barrier-synchronized) and otherwise
touch only rank-private state, results are deterministic regardless of OS
thread scheduling — which is what makes the serial-vs-distributed
equivalence test meaningful.

Threads, not processes: the simulated cluster exists to *model* rank
topology, place ownership, and communication volume, not to win wall-clock
speed (numpy releases the GIL for large kernels anyway; real task-parallel
speedup lives in :class:`~repro.distrib.taskpool.ProcessPool`).

Failure semantics mirror a real MPI job: a rank raising an ordinary
exception aborts the barrier so siblings fail fast with the root cause; a
rank raising :class:`~repro.errors.RankDeadError` (via
``Communicator.die``) exits *silently*, and detection is left to the
heartbeat deadline (``heartbeat_timeout``) — surviving ranks then raise
:class:`~repro.errors.RankFailureError` naming the suspects.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..errors import CommError, RankDeadError, RankFailureError
from .comm import Communicator, TrafficStats, _SharedBoard

__all__ = ["SimCluster", "ClusterRunResult"]


@dataclass
class ClusterRunResult:
    """Return values and traffic from one SPMD run."""

    returns: list[Any]
    traffic: list[TrafficStats]

    @property
    def total_traffic(self) -> TrafficStats:
        if not self.traffic:
            return TrafficStats()
        return self.traffic[0].merged(self.traffic[1:])


class SimCluster:
    """A simulated cluster of ``n_ranks`` lock-stepped ranks.

    ``heartbeat_timeout`` (seconds) arms a liveness deadline on every
    collective: a rank that stops participating breaks the barrier for its
    siblings within the deadline instead of stalling the run until the
    overall ``timeout``.

    Example
    -------
    >>> cluster = SimCluster(4)
    >>> def rank_fn(comm):
    ...     return comm.allreduce_sum(comm.rank)
    >>> cluster.run(rank_fn).returns
    [6, 6, 6, 6]
    """

    def __init__(
        self, n_ranks: int, heartbeat_timeout: float | None = None
    ) -> None:
        if n_ranks < 1:
            raise CommError(f"cluster needs at least one rank, got {n_ranks}")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise CommError("heartbeat_timeout must be positive")
        self.n_ranks = n_ranks
        self.heartbeat_timeout = heartbeat_timeout

    def run(
        self,
        rank_fn: Callable[..., Any],
        rank_args: Sequence[tuple] | None = None,
        timeout: float | None = 600.0,
    ) -> ClusterRunResult:
        """Execute ``rank_fn(comm, *rank_args[rank])`` on every rank.

        Any rank raising propagates the first exception to the caller after
        breaking the barrier so sibling ranks do not deadlock.  ``timeout``
        bounds the whole run: it is one shared deadline for joining every
        rank thread, not a per-thread allowance (n slow ranks cannot
        stretch the wait to n × timeout).
        """
        if rank_args is not None and len(rank_args) != self.n_ranks:
            raise CommError(
                f"rank_args must have {self.n_ranks} entries, got {len(rank_args)}"
            )
        board = _SharedBoard(self.n_ranks, heartbeat_timeout=self.heartbeat_timeout)
        comms = [Communicator(r, board) for r in range(self.n_ranks)]
        returns: list[Any] = [None] * self.n_ranks
        errors: list[tuple[int, BaseException]] = []
        dead_ranks: list[int] = []
        lock = threading.Lock()

        def runner(rank: int) -> None:
            args = rank_args[rank] if rank_args is not None else ()
            try:
                returns[rank] = rank_fn(comms[rank], *args)
            except RankDeadError:
                # simulated hard kill: exit silently, leave the barrier
                # intact — siblings must detect the death via the
                # heartbeat deadline, as with a real SIGKILLed process
                with lock:
                    dead_ranks.append(rank)
            except BaseException as exc:  # noqa: BLE001 - rethrown below
                with lock:
                    errors.append((rank, exc))
                board.barrier.abort()

        if self.n_ranks == 1:
            # fast path, also keeps single-rank runs on the caller's stack
            runner(0)
        else:
            threads = [
                threading.Thread(
                    target=runner, args=(rank,), name=f"simrank-{rank}", daemon=True
                )
                for rank in range(self.n_ranks)
            ]
            for t in threads:
                t.start()
            deadline = (
                time.monotonic() + timeout if timeout is not None else None
            )
            for t in threads:
                remaining = (
                    None
                    if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                t.join(timeout=remaining)
                if t.is_alive():
                    board.barrier.abort()
                    raise CommError(
                        f"rank thread {t.name} still running at the shared "
                        f"{timeout}s deadline"
                    )

        if errors:
            errors.sort(key=lambda e: e[0])
            rank, exc = errors[0]
            if isinstance(exc, CommError) and len(errors) > 1:
                # prefer the root-cause error over secondary broken barriers
                for r, e in errors:
                    if not isinstance(e, CommError):
                        rank, exc = r, e
                        break
            if isinstance(exc, RankFailureError):
                suspects = sorted(set(exc.suspects) | set(dead_ranks))
                raise RankFailureError(
                    f"rank {rank} detected a failed rank "
                    f"(suspects: {suspects}): {exc}",
                    suspects=suspects,
                ) from exc
            raise CommError(f"rank {rank} failed: {exc!r}") from exc
        if dead_ranks:
            # every surviving rank returned before noticing (or n_ranks == 1)
            suspects = sorted(dead_ranks)
            raise RankFailureError(
                f"rank(s) {suspects} died during the run", suspects=suspects
            )
        return ClusterRunResult(
            returns=returns, traffic=[c.stats for c in comms]
        )
