"""Agent migration payloads.

When an agent's next place lives on a different rank, the hosting rank
ships the agent's state there.  The payload carries exactly what the
destination needs to continue the agent's open activity spell; it is a
fixed-width structured array so metering (and a real MPI port) sees a flat
buffer, not pickled objects.
"""

from __future__ import annotations

import numpy as np

from ..errors import CommError

__all__ = ["MIGRANT_DTYPE", "pack_migrants", "unpack_migrants"]

#: person id, the open spell's start hour, and its (activity, place) state
MIGRANT_DTYPE = np.dtype(
    [
        ("person", "<u4"),
        ("spell_start", "<i8"),
        ("activity", "<u4"),
        ("place", "<u4"),
    ]
)


def pack_migrants(
    person: np.ndarray,
    spell_start: np.ndarray,
    activity: np.ndarray,
    place: np.ndarray,
) -> np.ndarray:
    """Bundle migrating agents into one contiguous structured array."""
    n = len(person)
    for name, col in (
        ("spell_start", spell_start),
        ("activity", activity),
        ("place", place),
    ):
        if len(col) != n:
            raise CommError(f"migrant column {name} length mismatch")
    out = np.empty(n, dtype=MIGRANT_DTYPE)
    out["person"] = person
    out["spell_start"] = spell_start
    out["activity"] = activity
    out["place"] = place
    return out


def unpack_migrants(
    payloads: list[np.ndarray | None],
) -> np.ndarray:
    """Concatenate received migrant payloads (skipping empty/None)."""
    parts = [
        np.asarray(p, dtype=MIGRANT_DTYPE)
        for p in payloads
        if p is not None and len(p)
    ]
    if not parts:
        return np.empty(0, dtype=MIGRANT_DTYPE)
    return np.concatenate(parts) if len(parts) > 1 else parts[0]
