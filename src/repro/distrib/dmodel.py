"""Distributed model driver.

Runs the chiSIM-like model across ranks the way Repast HPC does: each rank
owns the places a :class:`~repro.distrib.partition.PlacePartition` assigns
to it, hosts the agents currently at its places, and logs activity changes
that occur on it ("each process logger is responsible for logging activity
changes that occur only in that process").  When an agent's next place
belongs to another rank, its open activity spell migrates there through a
metered all-to-all exchange.

Invariant (tested): for the same population/seed the union of all ranks'
event records equals the serial engine's event stream exactly.
"""

from __future__ import annotations

import hashlib
import io
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from .._util import atomic_write_bytes
from ..config import HOURS_PER_WEEK, SimulationConfig
from ..errors import CheckpointError, RankDeadError, RankFailureError, SimulationError
from ..evlog.multifile import rank_log_path
from ..evlog.schema import LogRecordArray, empty_records
from ..evlog.writer import CachedLogWriter
from ..sim.checkpoint import (
    CHECKPOINT_VERSION,
    read_manifest,
    sim_checkpoint_digest,
    write_manifest,
)
from ..synthpop.generator import SyntheticPopulation
from ..synthpop.schedule import WeekGrid, WeeklyScheduleGenerator
from .comm import Communicator, TrafficStats
from .migration import pack_migrants, unpack_migrants
from .partition import PlacePartition
from .simcluster import SimCluster

__all__ = [
    "DistributedSimulation",
    "DistributedRunResult",
    "DIST_MANIFEST",
    "DIST_STATE",
]

DIST_MANIFEST = "dist_manifest.json"
DIST_STATE = "dist_state.npz"


def _save_dist_checkpoint(
    directory: Path, digest: str, next_hour: int, states: list[dict]
) -> None:
    """Commit one collective snapshot: bulky npz first, manifest last."""
    directory.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    offsets: list[int] = []
    for r, st in enumerate(states):
        arrays[f"ids_{r}"] = st["ids"]
        arrays[f"start_{r}"] = st["spell_start"]
        arrays[f"act_{r}"] = st["spell_act"]
        arrays[f"place_{r}"] = st["spell_place"]
        arrays[f"records_{r}"] = st["records"]
        arrays[f"mig_{r}"] = st["migrations_out"]
        offsets.append(int(st["writer_offset"]))
    buf = io.BytesIO()
    np.savez_compressed(buf, **arrays)
    atomic_write_bytes(directory / DIST_STATE, buf.getvalue())
    write_manifest(
        directory,
        DIST_MANIFEST,
        {
            "version": CHECKPOINT_VERSION,
            "digest": digest,
            "next_hour": int(next_hour),
            "n_ranks": len(states),
            "writer_offsets": offsets,
        },
    )


def _load_dist_checkpoint(
    directory: Path, digest: str, n_ranks: int
) -> tuple[int, list[dict]]:
    """Load a collective snapshot; returns ``(next_hour, per-rank states)``."""
    manifest = read_manifest(directory, DIST_MANIFEST, expected_digest=digest)
    if manifest.get("n_ranks") != n_ranks:
        raise CheckpointError(
            f"checkpoint was written for {manifest.get('n_ranks')} ranks, "
            f"this run has {n_ranks}"
        )
    state_path = directory / DIST_STATE
    if not state_path.is_file():
        raise CheckpointError(
            f"manifest in {directory} has no {DIST_STATE} beside it"
        )
    offsets = manifest["writer_offsets"]
    states: list[dict] = []
    with np.load(state_path) as data:
        for r in range(n_ranks):
            states.append(
                {
                    "ids": data[f"ids_{r}"],
                    "spell_start": data[f"start_{r}"],
                    "spell_act": data[f"act_{r}"],
                    "spell_place": data[f"place_{r}"],
                    "records": data[f"records_{r}"],
                    "migrations_out": data[f"mig_{r}"],
                    "writer_offset": int(offsets[r]),
                }
            )
    return int(manifest["next_hour"]), states


class _ScheduleCache:
    """Thread-shared lazy week-grid cache.

    Models ranks reading the same deterministic schedule inputs; generating
    a week once and sharing it read-only across rank threads avoids
    duplicating the grid per rank in this in-process simulation.
    """

    def __init__(self, generator: WeeklyScheduleGenerator) -> None:
        self._generator = generator
        self._lock = threading.Lock()
        self._weeks: dict[int, WeekGrid] = {}

    def week(self, index: int) -> WeekGrid:
        with self._lock:
            grid = self._weeks.get(index)
            if grid is None:
                grid = self._generator.week(index)
                self._weeks[index] = grid
                # keep at most two weeks resident (current + boundary)
                for old in [k for k in self._weeks if k < index - 1]:
                    del self._weeks[old]
        return grid


@dataclass
class _RankOutput:
    rank: int
    records: LogRecordArray
    migrations_out: np.ndarray  # per-hour counts
    hosted_final: int
    log_path: Path | None
    checkpoints: int = 0


@dataclass
class DistributedRunResult:
    """Everything a distributed run produced."""

    n_ranks: int
    duration_hours: int
    per_rank_records: list[LogRecordArray]
    migrations_per_hour: np.ndarray
    traffic: TrafficStats
    per_rank_traffic: list[TrafficStats] = field(default_factory=list)
    log_paths: list[Path] = field(default_factory=list)
    #: supervised restarts after detected rank failures
    restarts: int = 0
    #: collective snapshots committed (final successful attempt)
    checkpoints_written: int = 0

    @property
    def total_migrations(self) -> int:
        return int(self.migrations_per_hour.sum())

    @property
    def total_events(self) -> int:
        return sum(len(r) for r in self.per_rank_records)

    def merged_records(self) -> LogRecordArray:
        """All ranks' records, sorted by (person, start) — the canonical
        order for comparison with the serial engine."""
        parts = [r for r in self.per_rank_records if len(r)]
        if not parts:
            return empty_records(0)
        merged = np.concatenate(parts) if len(parts) > 1 else parts[0]
        order = np.lexsort((merged["start"], merged["person"]))
        return merged[order]

    def events_per_rank(self) -> list[int]:
        return [len(r) for r in self.per_rank_records]


class DistributedSimulation:
    """The distributed chiSIM-like model.

    Parameters
    ----------
    population:
        The synthetic world.
    config:
        ``config.n_ranks`` ranks are simulated; the disease layer is not
        supported distributed (run it on the serial engine).
    partition:
        Place → rank ownership; see :mod:`repro.distrib.partition`.
    """

    def __init__(
        self,
        population: SyntheticPopulation,
        config: SimulationConfig,
        partition: PlacePartition,
    ) -> None:
        if config.disease is not None:
            raise SimulationError(
                "distributed runs do not support the disease layer; "
                "use the serial Simulation"
            )
        if partition.n_places != population.n_places:
            raise SimulationError(
                "partition covers {0} places, population has {1}".format(
                    partition.n_places, population.n_places
                )
            )
        if partition.n_ranks != config.n_ranks:
            raise SimulationError(
                f"partition has {partition.n_ranks} ranks, config wants "
                f"{config.n_ranks}"
            )
        self.population = population
        self.config = config
        self.partition = partition

    def checkpoint_digest(self, with_log: bool) -> str:
        """Configuration + partition fingerprint guarding resume."""
        base = sim_checkpoint_digest(self.config, with_log=with_log)
        h = hashlib.sha256(base.encode())
        h.update(self.partition.assignment.tobytes())
        return h.hexdigest()

    def run(
        self,
        log_dir: str | Path | None = None,
        cluster: "SimCluster | None" = None,
        checkpoint_dir: str | Path | None = None,
        fault_hook: "Callable[[Communicator, int], None] | None" = None,
        max_restarts: int = 0,
    ) -> DistributedRunResult:
        """Execute the run on ``config.n_ranks`` ranks.

        ``cluster`` may be any object with a compatible ``run(rank_fn)``
        (e.g. :class:`~repro.distrib.proccluster.ProcessBspCluster` for
        real OS processes); defaults to the in-process simulated cluster.

        Fault tolerance
        ---------------
        With ``checkpoint_dir`` set and ``config.checkpoint_every_hours``
        configured, ranks commit a collective snapshot every N hours:
        per-rank hosted agents, open spells, emitted records, and log-file
        byte offsets are gathered to rank 0, which writes them atomically
        (state npz first, manifest last).  With ``max_restarts > 0`` and the
        default in-process cluster, a detected rank failure
        (:class:`~repro.errors.RankFailureError`, raised when a rank misses
        its ``config.heartbeat_timeout`` deadline) triggers a supervised
        restart: a fresh cluster restores every rank from the last
        snapshot — truncating each rank's log back to the recorded offset —
        and replays.  ``fault_hook(comm, hour)`` runs at the top of every
        rank-hour and exists for fault injection (call ``comm.die()`` to
        simulate a hard kill); hooks must be stateful so they do not
        re-kill after a restart.
        """
        duration = self.config.duration_hours
        n_ranks = self.config.n_ranks
        assignment = self.partition.assignment
        cache = _ScheduleCache(
            self.population.schedule_generator(self.config.schedule)
        )
        log_directory = Path(log_dir) if log_dir is not None else None
        if log_directory is not None:
            log_directory.mkdir(parents=True, exist_ok=True)
        cache_records = self.config.log_cache_records
        durability = self.config.log_durability
        every = self.config.checkpoint_every_hours
        ckpt_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        digest = self.checkpoint_digest(with_log=log_directory is not None)

        def rank_fn(comm: Communicator, resume_state: dict | None) -> _RankOutput:
            rank = comm.rank
            week = cache.week(0)
            checkpoints = 0
            if resume_state is not None:
                ids = resume_state["ids"].astype(np.uint32).copy()
                spell_start = resume_state["spell_start"].astype(np.int64).copy()
                spell_act = resume_state["spell_act"].astype(np.uint32).copy()
                spell_place = resume_state["spell_place"].astype(np.uint32).copy()
                migrations_out = (
                    resume_state["migrations_out"].astype(np.int64).copy()
                )
                start_hour = int(resume_state["next_hour"])
            else:
                place0 = week.place[:, 0]
                act0 = week.activity[:, 0]
                mine = assignment[place0.astype(np.int64)] == rank
                ids = np.flatnonzero(mine).astype(np.uint32)
                spell_start = np.zeros(len(ids), dtype=np.int64)
                spell_act = act0[ids].astype(np.uint32)
                spell_place = place0[ids].astype(np.uint32)
                migrations_out = np.zeros(duration, dtype=np.int64)
                start_hour = 1

            writer = None
            path = None
            if log_directory is not None:
                path = rank_log_path(log_directory, rank)
                if resume_state is not None:
                    writer = CachedLogWriter.open_resume(
                        path,
                        cache_records=cache_records,
                        durability=durability,
                        rank=rank,
                        at_offset=int(resume_state["writer_offset"]),
                    )
                else:
                    writer = CachedLogWriter(
                        path,
                        rank=rank,
                        cache_records=cache_records,
                        durability=durability,
                    )
            records: list[LogRecordArray] = []
            if resume_state is not None and len(resume_state["records"]):
                records.append(resume_state["records"])

            def emit(rec: LogRecordArray) -> None:
                if len(rec):
                    records.append(rec)
                    if writer is not None:
                        writer.log_batch(rec)

            killed = False
            try:
                for hour in range(start_hour, duration):
                    if fault_hook is not None:
                        fault_hook(comm, hour)
                    week_index, hour_of_week = divmod(hour, HOURS_PER_WEEK)
                    if hour_of_week == 0 or hour == start_hour:
                        week = cache.week(week_index)
                    act_col = week.activity[:, hour_of_week]
                    place_col = week.place[:, hour_of_week]

                    new_act = act_col[ids]
                    new_place = place_col[ids]
                    changed = (new_act != spell_act) | (new_place != spell_place)
                    idx = np.flatnonzero(changed)
                    if len(idx):
                        rec = empty_records(len(idx))
                        rec["start"] = spell_start[idx]
                        rec["stop"] = hour
                        rec["person"] = ids[idx]
                        rec["activity"] = spell_act[idx]
                        rec["place"] = spell_place[idx]
                        emit(rec)
                        spell_start[idx] = hour
                        spell_act[idx] = new_act[idx]
                        spell_place[idx] = new_place[idx]

                    dest = assignment[spell_place.astype(np.int64)]
                    leaving = dest != rank
                    payloads: list[np.ndarray | None] = [None] * comm.size
                    if leaving.any():
                        lv = np.flatnonzero(leaving)
                        migrations_out[hour] = len(lv)
                        dest_lv = dest[lv]
                        order = np.argsort(dest_lv, kind="stable")
                        lv = lv[order]
                        dest_lv = dest_lv[order]
                        bounds = np.searchsorted(
                            dest_lv, np.arange(comm.size + 1)
                        )
                        for r in range(comm.size):
                            lo, hi = bounds[r], bounds[r + 1]
                            if hi > lo:
                                rows = lv[lo:hi]
                                payloads[r] = pack_migrants(
                                    ids[rows],
                                    spell_start[rows],
                                    spell_act[rows],
                                    spell_place[rows],
                                )
                        keep = ~leaving
                        ids = ids[keep]
                        spell_start = spell_start[keep]
                        spell_act = spell_act[keep]
                        spell_place = spell_place[keep]
                    incoming = unpack_migrants(comm.alltoall(payloads))
                    if len(incoming):
                        ids = np.concatenate([ids, incoming["person"]])
                        spell_start = np.concatenate(
                            [spell_start, incoming["spell_start"]]
                        )
                        spell_act = np.concatenate(
                            [spell_act, incoming["activity"]]
                        )
                        spell_place = np.concatenate(
                            [spell_place, incoming["place"]]
                        )

                    if (
                        ckpt_dir is not None
                        and every
                        and (hour + 1) % every == 0
                        and (hour + 1) < duration
                    ):
                        if writer is not None:
                            # flush so the offset is a chunk boundary
                            writer.flush()
                        merged = (
                            np.concatenate(records)
                            if len(records) > 1
                            else (records[0] if records else empty_records(0))
                        )
                        records = [merged]
                        state = {
                            "ids": ids,
                            "spell_start": spell_start,
                            "spell_act": spell_act,
                            "spell_place": spell_place,
                            "records": merged,
                            "migrations_out": migrations_out,
                            "writer_offset": (
                                writer.offset if writer is not None else -1
                            ),
                        }
                        gathered = comm.gather(state, root=0)
                        if gathered is not None:
                            _save_dist_checkpoint(
                                ckpt_dir, digest, hour + 1, gathered
                            )
                        # nobody proceeds until the snapshot is committed
                        comm.barrier()
                        checkpoints += 1

                # close remaining spells
                if len(ids):
                    rec = empty_records(len(ids))
                    rec["start"] = spell_start
                    rec["stop"] = duration
                    rec["person"] = ids
                    rec["activity"] = spell_act
                    rec["place"] = spell_place
                    emit(rec)
            except RankDeadError:
                # simulated hard kill: skip all cleanup so the log file is
                # left torn, exactly as a SIGKILL would
                killed = True
                raise
            finally:
                if writer is not None and not killed:
                    writer.close()

            merged = (
                np.concatenate(records) if len(records) > 1
                else (records[0] if records else empty_records(0))
            )
            return _RankOutput(
                rank=rank,
                records=merged,
                migrations_out=migrations_out,
                hosted_final=len(ids),
                log_path=path,
                checkpoints=checkpoints,
            )

        restarts = 0
        while True:
            resume_states: list[dict] | None = None
            if ckpt_dir is not None and (ckpt_dir / DIST_MANIFEST).is_file():
                next_hour, resume_states = _load_dist_checkpoint(
                    ckpt_dir, digest, n_ranks
                )
                for st in resume_states:
                    st["next_hour"] = next_hour
            attempt_cluster = cluster
            if attempt_cluster is None:
                attempt_cluster = SimCluster(
                    n_ranks, heartbeat_timeout=self.config.heartbeat_timeout
                )
            rank_args = [
                (resume_states[r] if resume_states is not None else None,)
                for r in range(n_ranks)
            ]
            try:
                result = attempt_cluster.run(rank_fn, rank_args=rank_args)
                break
            except RankFailureError:
                # supervised restart only with the default in-process
                # cluster (a caller-provided cluster may not be reusable)
                if cluster is not None or restarts >= max_restarts:
                    raise
                restarts += 1
        outputs: list[_RankOutput] = result.returns

        hosted_total = sum(o.hosted_final for o in outputs)
        if hosted_total != self.population.n_persons:
            raise SimulationError(
                f"agents lost in migration: {hosted_total} hosted at end, "
                f"population is {self.population.n_persons}"
            )
        migrations = np.zeros(duration, dtype=np.int64)
        for o in outputs:
            migrations += o.migrations_out
        return DistributedRunResult(
            n_ranks=n_ranks,
            duration_hours=duration,
            per_rank_records=[o.records for o in outputs],
            migrations_per_hour=migrations,
            traffic=result.total_traffic,
            per_rank_traffic=result.traffic,
            log_paths=[o.log_path for o in outputs if o.log_path is not None],
            restarts=restarts,
            checkpoints_written=outputs[0].checkpoints,
        )
