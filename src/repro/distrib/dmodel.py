"""Distributed model driver.

Runs the chiSIM-like model across ranks the way Repast HPC does: each rank
owns the places a :class:`~repro.distrib.partition.PlacePartition` assigns
to it, hosts the agents currently at its places, and logs activity changes
that occur on it ("each process logger is responsible for logging activity
changes that occur only in that process").  When an agent's next place
belongs to another rank, its open activity spell migrates there through a
metered all-to-all exchange.

Invariant (tested): for the same population/seed the union of all ranks'
event records equals the serial engine's event stream exactly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..config import HOURS_PER_WEEK, SimulationConfig
from ..errors import SimulationError
from ..evlog.multifile import rank_log_path
from ..evlog.schema import LogRecordArray, empty_records
from ..evlog.writer import CachedLogWriter
from ..synthpop.generator import SyntheticPopulation
from ..synthpop.schedule import WeekGrid, WeeklyScheduleGenerator
from .comm import Communicator, TrafficStats
from .migration import pack_migrants, unpack_migrants
from .partition import PlacePartition
from .simcluster import SimCluster

__all__ = ["DistributedSimulation", "DistributedRunResult"]


class _ScheduleCache:
    """Thread-shared lazy week-grid cache.

    Models ranks reading the same deterministic schedule inputs; generating
    a week once and sharing it read-only across rank threads avoids
    duplicating the grid per rank in this in-process simulation.
    """

    def __init__(self, generator: WeeklyScheduleGenerator) -> None:
        self._generator = generator
        self._lock = threading.Lock()
        self._weeks: dict[int, WeekGrid] = {}

    def week(self, index: int) -> WeekGrid:
        with self._lock:
            grid = self._weeks.get(index)
            if grid is None:
                grid = self._generator.week(index)
                self._weeks[index] = grid
                # keep at most two weeks resident (current + boundary)
                for old in [k for k in self._weeks if k < index - 1]:
                    del self._weeks[old]
        return grid


@dataclass
class _RankOutput:
    rank: int
    records: LogRecordArray
    migrations_out: np.ndarray  # per-hour counts
    hosted_final: int
    log_path: Path | None


@dataclass
class DistributedRunResult:
    """Everything a distributed run produced."""

    n_ranks: int
    duration_hours: int
    per_rank_records: list[LogRecordArray]
    migrations_per_hour: np.ndarray
    traffic: TrafficStats
    per_rank_traffic: list[TrafficStats] = field(default_factory=list)
    log_paths: list[Path] = field(default_factory=list)

    @property
    def total_migrations(self) -> int:
        return int(self.migrations_per_hour.sum())

    @property
    def total_events(self) -> int:
        return sum(len(r) for r in self.per_rank_records)

    def merged_records(self) -> LogRecordArray:
        """All ranks' records, sorted by (person, start) — the canonical
        order for comparison with the serial engine."""
        parts = [r for r in self.per_rank_records if len(r)]
        if not parts:
            return empty_records(0)
        merged = np.concatenate(parts) if len(parts) > 1 else parts[0]
        order = np.lexsort((merged["start"], merged["person"]))
        return merged[order]

    def events_per_rank(self) -> list[int]:
        return [len(r) for r in self.per_rank_records]


class DistributedSimulation:
    """The distributed chiSIM-like model.

    Parameters
    ----------
    population:
        The synthetic world.
    config:
        ``config.n_ranks`` ranks are simulated; the disease layer is not
        supported distributed (run it on the serial engine).
    partition:
        Place → rank ownership; see :mod:`repro.distrib.partition`.
    """

    def __init__(
        self,
        population: SyntheticPopulation,
        config: SimulationConfig,
        partition: PlacePartition,
    ) -> None:
        if config.disease is not None:
            raise SimulationError(
                "distributed runs do not support the disease layer; "
                "use the serial Simulation"
            )
        if partition.n_places != population.n_places:
            raise SimulationError(
                "partition covers {0} places, population has {1}".format(
                    partition.n_places, population.n_places
                )
            )
        if partition.n_ranks != config.n_ranks:
            raise SimulationError(
                f"partition has {partition.n_ranks} ranks, config wants "
                f"{config.n_ranks}"
            )
        self.population = population
        self.config = config
        self.partition = partition

    def run(
        self,
        log_dir: str | Path | None = None,
        cluster: "SimCluster | None" = None,
    ) -> DistributedRunResult:
        """Execute the run on ``config.n_ranks`` ranks.

        ``cluster`` may be any object with a compatible ``run(rank_fn)``
        (e.g. :class:`~repro.distrib.proccluster.ProcessBspCluster` for
        real OS processes); defaults to the in-process simulated cluster.
        """
        duration = self.config.duration_hours
        n_ranks = self.config.n_ranks
        assignment = self.partition.assignment
        cache = _ScheduleCache(
            self.population.schedule_generator(self.config.schedule)
        )
        log_directory = Path(log_dir) if log_dir is not None else None
        if log_directory is not None:
            log_directory.mkdir(parents=True, exist_ok=True)
        cache_records = self.config.log_cache_records

        def rank_fn(comm: Communicator) -> _RankOutput:
            rank = comm.rank
            week = cache.week(0)
            place0 = week.place[:, 0]
            act0 = week.activity[:, 0]
            mine = assignment[place0.astype(np.int64)] == rank
            ids = np.flatnonzero(mine).astype(np.uint32)
            spell_start = np.zeros(len(ids), dtype=np.int64)
            spell_act = act0[ids].astype(np.uint32)
            spell_place = place0[ids].astype(np.uint32)

            writer = None
            path = None
            if log_directory is not None:
                path = rank_log_path(log_directory, rank)
                writer = CachedLogWriter(
                    path, rank=rank, cache_records=cache_records
                )
            records: list[LogRecordArray] = []
            migrations_out = np.zeros(duration, dtype=np.int64)

            def emit(rec: LogRecordArray) -> None:
                if len(rec):
                    records.append(rec)
                    if writer is not None:
                        writer.log_batch(rec)

            try:
                for hour in range(1, duration):
                    week_index, hour_of_week = divmod(hour, HOURS_PER_WEEK)
                    if hour_of_week == 0 or hour == 1:
                        week = cache.week(week_index)
                    act_col = week.activity[:, hour_of_week]
                    place_col = week.place[:, hour_of_week]

                    new_act = act_col[ids]
                    new_place = place_col[ids]
                    changed = (new_act != spell_act) | (new_place != spell_place)
                    idx = np.flatnonzero(changed)
                    if len(idx):
                        rec = empty_records(len(idx))
                        rec["start"] = spell_start[idx]
                        rec["stop"] = hour
                        rec["person"] = ids[idx]
                        rec["activity"] = spell_act[idx]
                        rec["place"] = spell_place[idx]
                        emit(rec)
                        spell_start[idx] = hour
                        spell_act[idx] = new_act[idx]
                        spell_place[idx] = new_place[idx]

                    dest = assignment[spell_place.astype(np.int64)]
                    leaving = dest != rank
                    payloads: list[np.ndarray | None] = [None] * comm.size
                    if leaving.any():
                        lv = np.flatnonzero(leaving)
                        migrations_out[hour] = len(lv)
                        dest_lv = dest[lv]
                        order = np.argsort(dest_lv, kind="stable")
                        lv = lv[order]
                        dest_lv = dest_lv[order]
                        bounds = np.searchsorted(
                            dest_lv, np.arange(comm.size + 1)
                        )
                        for r in range(comm.size):
                            lo, hi = bounds[r], bounds[r + 1]
                            if hi > lo:
                                rows = lv[lo:hi]
                                payloads[r] = pack_migrants(
                                    ids[rows],
                                    spell_start[rows],
                                    spell_act[rows],
                                    spell_place[rows],
                                )
                        keep = ~leaving
                        ids = ids[keep]
                        spell_start = spell_start[keep]
                        spell_act = spell_act[keep]
                        spell_place = spell_place[keep]
                    incoming = unpack_migrants(comm.alltoall(payloads))
                    if len(incoming):
                        ids = np.concatenate([ids, incoming["person"]])
                        spell_start = np.concatenate(
                            [spell_start, incoming["spell_start"]]
                        )
                        spell_act = np.concatenate(
                            [spell_act, incoming["activity"]]
                        )
                        spell_place = np.concatenate(
                            [spell_place, incoming["place"]]
                        )

                # close remaining spells
                if len(ids):
                    rec = empty_records(len(ids))
                    rec["start"] = spell_start
                    rec["stop"] = duration
                    rec["person"] = ids
                    rec["activity"] = spell_act
                    rec["place"] = spell_place
                    emit(rec)
            finally:
                if writer is not None:
                    writer.close()

            merged = (
                np.concatenate(records) if len(records) > 1
                else (records[0] if records else empty_records(0))
            )
            return _RankOutput(
                rank=rank,
                records=merged,
                migrations_out=migrations_out,
                hosted_final=len(ids),
                log_path=path,
            )

        if cluster is None:
            cluster = SimCluster(n_ranks)
        result = cluster.run(rank_fn)
        outputs: list[_RankOutput] = result.returns

        hosted_total = sum(o.hosted_final for o in outputs)
        if hosted_total != self.population.n_persons:
            raise SimulationError(
                f"agents lost in migration: {hosted_total} hosted at end, "
                f"population is {self.population.n_persons}"
            )
        migrations = np.zeros(duration, dtype=np.int64)
        for o in outputs:
            migrations += o.migrations_out
        return DistributedRunResult(
            n_ranks=n_ranks,
            duration_hours=duration,
            per_rank_records=[o.records for o in outputs],
            migrations_per_hour=migrations,
            traffic=result.total_traffic,
            per_rank_traffic=result.traffic,
            log_paths=[o.log_path for o in outputs if o.log_path is not None],
        )
