"""SNOW-style worker pools for the synthesis pipeline.

The paper's R pipeline uses "the SNOW R package ... to manage the worker
processes", with a socket cluster on one workstation or an Rmpi backend on
a large cluster.  Both are master/worker task pools: the root partitions a
task list, workers map a function over their share, results return to the
root.

Three interchangeable backends:

* :class:`SerialPool` — in-process, for tests and tiny runs;
* :class:`ThreadPool` — threads; effective when the mapped function is
  numpy/scipy-heavy (GIL released in kernels);
* :class:`ProcessPool` — ``multiprocessing``; genuine parallelism, the
  closest analogue of SNOW's socket cluster.

All backends preserve input ordering of results, which the pipeline's
deterministic output depends on.

Fault tolerance
---------------
On the Blues cluster a multi-hour synthesis run dies if one worker task
raises once.  Each pool therefore accepts a :class:`RetryPolicy`: a failed
task is re-executed up to ``max_attempts`` times with exponential backoff
and *deterministic* jitter (keyed on the task index and attempt number, so
two runs of the same job sleep identically).  Per-task attempt counts are
surfaced through a :class:`PoolReport` on the pool (``pool.report``
accumulates across ``map`` calls; ``pool.last_attempts`` details the most
recent call).  A task that fails on every attempt raises
:class:`~repro.errors.TaskRetryError` with the original exception chained.

Retried tasks are always re-submitted *individually*, even on the chunked
:class:`ProcessPool` backend — a transient failure in one task must not
re-run the other tasks that happened to share its chunk.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, Callable, Protocol, Sequence, TypeVar

from .._util import stable_uniform
from ..errors import PartitionError, TaskRetryError
from ..obs import get_probe

__all__ = [
    "RetryPolicy",
    "PoolReport",
    "WorkerPool",
    "SerialPool",
    "ThreadPool",
    "ProcessPool",
    "make_pool",
]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class RetryPolicy:
    """How a pool re-runs failing tasks.

    Parameters
    ----------
    max_attempts:
        Total tries per task (1 = no retries).
    base_delay:
        Sleep before the first retry, in seconds.  0 disables sleeping
        entirely (the right setting for tests).
    backoff:
        Multiplier applied per additional attempt (exponential backoff).
    max_delay:
        Ceiling on the un-jittered delay.
    jitter:
        Fractional spread around the delay; the draw is deterministic in
        ``(seed, task_index, attempt)`` so reruns are reproducible.
    seed:
        Jitter stream selector.
    retry_on:
        Exception classes that are retried; anything else propagates
        immediately.  Defaults to :class:`Exception`.
    """

    max_attempts: int = 3
    base_delay: float = 0.0
    backoff: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    seed: int = 0
    retry_on: tuple[type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise PartitionError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise PartitionError("delays must be >= 0")
        if self.backoff < 1.0:
            raise PartitionError("backoff must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise PartitionError("jitter must be in [0, 1]")

    def delay(self, task_index: int, attempt: int) -> float:
        """Sleep before retry number *attempt* (1-based) of a task."""
        if self.base_delay == 0.0:
            return 0.0
        raw = min(self.max_delay, self.base_delay * self.backoff ** (attempt - 1))
        u = stable_uniform(self.seed, task_index, attempt)  # in [0, 1)
        return raw * (1.0 + self.jitter * (2.0 * u - 1.0))

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        return attempt < self.max_attempts and isinstance(exc, self.retry_on)


@dataclass
class PoolReport:
    """Attempt accounting, cumulative across a pool's ``map`` calls."""

    n_tasks: int = 0
    n_retries: int = 0
    n_exhausted: int = 0
    max_attempts_seen: int = 1
    #: task indices (per map call) that needed more than one attempt,
    #: mapped to their final attempt count
    retried_tasks: dict[int, int] = field(default_factory=dict)

    def record(self, task_index: int, attempts: int, exhausted: bool) -> None:
        self.n_tasks += 1
        self.n_retries += attempts - 1
        self.max_attempts_seen = max(self.max_attempts_seen, attempts)
        if attempts > 1:
            self.retried_tasks[task_index] = attempts
        if exhausted:
            self.n_exhausted += 1

    def summary(self) -> str:
        return (
            f"tasks={self.n_tasks} retries={self.n_retries} "
            f"exhausted={self.n_exhausted} "
            f"max_attempts={self.max_attempts_seen}"
        )


class WorkerPool(Protocol):
    """Minimal pool protocol used by the pipeline."""

    @property
    def n_workers(self) -> int: ...

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]: ...

    def close(self) -> None: ...


class _Caught:
    """Picklable wrapper that turns ``fn(item)`` into ``(ok, payload)``.

    Chunked backends cannot tell *which* task of a chunk raised; catching
    at the task boundary keeps failures addressable per item.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Any], Any]) -> None:
        self.fn = fn

    def __call__(self, item: Any) -> tuple[bool, Any]:
        try:
            return True, self.fn(item)
        except Exception as exc:  # noqa: BLE001 — re-raised by the driver
            return False, exc


class _RetryDriver:
    """Shared retry loop: first pass through ``submit_all``, then
    individual re-submission through ``run_one``."""

    def __init__(self, retry: RetryPolicy, report: PoolReport) -> None:
        self.retry = retry
        self.report = report
        #: per-task attempt counts of the most recent map call
        self.attempts: dict[int, int] = {}

    def finish(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        first_pass: list[tuple[bool, Any]],
        run_one: Callable[[Callable[[Any], Any], Any], tuple[bool, Any]],
    ) -> list[Any]:
        results: list[Any] = [None] * len(items)
        caught = _Caught(fn)
        for i, (ok, payload) in enumerate(first_pass):
            attempt = 1
            while not ok:
                exc = payload
                if not self.retry.should_retry(exc, attempt):
                    self.attempts[i] = attempt
                    self.report.record(i, attempt, exhausted=True)
                    raise TaskRetryError(
                        f"task {i} failed after {attempt} attempt(s): {exc!r}",
                        task_index=i,
                        attempts=attempt,
                    ) from exc
                delay = self.retry.delay(i, attempt)
                if delay > 0:
                    time.sleep(delay)
                attempt += 1
                ok, payload = run_one(caught, items[i])
            results[i] = payload
            self.attempts[i] = attempt
            self.report.record(i, attempt, exhausted=False)
        return results


class _PoolBase:
    """Retry plumbing common to all backends."""

    def __init__(self, retry: RetryPolicy | None) -> None:
        self.retry = retry
        self.report = PoolReport()
        #: attempt counts per task index for the most recent ``map`` call
        self.last_attempts: dict[int, int] = {}
        #: when True, ``map`` pickles each task item once and accumulates
        #: the byte count in :attr:`bytes_shipped` — the root→worker
        #: serialization traffic a process backend pays (measured even on
        #: in-process backends, so dispatch strategies compare like for
        #: like).  Off by default: measuring costs a pickle pass.
        self.track_bytes = False
        self.bytes_shipped = 0

    def _account_items(self, items: Sequence[Any]) -> None:
        probe = get_probe()
        probe.count("pool.map_calls")
        probe.count("pool.tasks", len(items))
        if self.track_bytes:
            shipped = sum(
                len(pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL))
                for item in items
            )
            self.bytes_shipped += shipped
            probe.pool_bytes(shipped)

    def _finish_with_retries(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        first_pass: list[tuple[bool, Any]],
        run_one: Callable[[Callable[[Any], Any], Any], tuple[bool, Any]],
    ) -> list[Any]:
        assert self.retry is not None
        driver = _RetryDriver(self.retry, self.report)
        try:
            results = driver.finish(fn, items, first_pass, run_one)
        finally:
            self.last_attempts = driver.attempts
            retries = sum(a - 1 for a in driver.attempts.values() if a > 1)
            if retries:
                get_probe().count("pool.retries", retries)
        return results


class SerialPool(_PoolBase):
    """Degenerate single-worker pool (the root does everything)."""

    def __init__(self, retry: RetryPolicy | None = None) -> None:
        super().__init__(retry)
        self._closed = False

    @property
    def n_workers(self) -> int:
        return 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        if self._closed:
            raise PartitionError("pool is closed")
        self._account_items(items)
        if self.retry is None:
            return [fn(item) for item in items]
        caught = _Caught(fn)
        first = [caught(item) for item in items]
        return self._finish_with_retries(
            fn, items, first, lambda c, item: c(item)
        )

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "SerialPool":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


class ThreadPool(_PoolBase):
    """Thread-backed pool; best for numpy-heavy task functions."""

    def __init__(self, n_workers: int, retry: RetryPolicy | None = None) -> None:
        super().__init__(retry)
        if n_workers < 1:
            raise PartitionError("n_workers must be >= 1")
        self._n = n_workers
        self._executor = ThreadPoolExecutor(max_workers=n_workers)

    @property
    def n_workers(self) -> int:
        return self._n

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        self._account_items(items)
        if self.retry is None:
            return list(self._executor.map(fn, items))
        caught = _Caught(fn)
        first = list(self._executor.map(caught, items))
        # retries run individually on the executor, preserving task order
        return self._finish_with_retries(
            fn,
            items,
            first,
            lambda c, item: self._executor.submit(c, item).result(),
        )

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ThreadPool":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


class ProcessPool(_PoolBase):
    """``multiprocessing``-backed pool (the SNOW socket-cluster analogue).

    Task functions and items must be picklable.  Results preserve input
    order.  Worker count defaults to the CPU count, like SNOW's "set of
    workers equal to the number of available CPUs".

    With a :class:`RetryPolicy`, the first pass still ships chunks (cheap),
    but every task result is individually addressable: a failing task is
    re-submitted *alone* via ``apply_async``, never as part of its original
    chunk, so its chunk-mates run exactly once.
    """

    def __init__(
        self, n_workers: int | None = None, retry: RetryPolicy | None = None
    ) -> None:
        super().__init__(retry)
        self._n = n_workers or os.cpu_count() or 1
        if self._n < 1:
            raise PartitionError("n_workers must be >= 1")
        ctx = mp.get_context("fork") if hasattr(os, "fork") else mp.get_context()
        self._pool = ctx.Pool(processes=self._n)

    @property
    def n_workers(self) -> int:
        return self._n

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        if not items:
            return []
        self._account_items(items)
        chunksize = max(1, len(items) // (self._n * 4))
        if self.retry is None:
            return self._pool.map(fn, items, chunksize=chunksize)
        caught = _Caught(fn)
        first = self._pool.map(caught, items, chunksize=chunksize)
        return self._finish_with_retries(
            fn,
            items,
            first,
            lambda c, item: self._pool.apply_async(c, (item,)).get(),
        )

    def close(self) -> None:
        self._pool.close()
        self._pool.join()

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


def make_pool(
    kind: str,
    n_workers: int | None = None,
    retry: RetryPolicy | None = None,
) -> WorkerPool:
    """Factory: ``'serial'``, ``'thread'``, or ``'process'``."""
    if kind == "serial":
        return SerialPool(retry=retry)
    if kind == "thread":
        return ThreadPool(n_workers or os.cpu_count() or 1, retry=retry)
    if kind == "process":
        return ProcessPool(n_workers, retry=retry)
    raise PartitionError(f"unknown pool kind {kind!r}")
