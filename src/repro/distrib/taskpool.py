"""SNOW-style worker pools for the synthesis pipeline.

The paper's R pipeline uses "the SNOW R package ... to manage the worker
processes", with a socket cluster on one workstation or an Rmpi backend on
a large cluster.  Both are master/worker task pools: the root partitions a
task list, workers map a function over their share, results return to the
root.

Three interchangeable backends:

* :class:`SerialPool` — in-process, for tests and tiny runs;
* :class:`ThreadPool` — threads; effective when the mapped function is
  numpy/scipy-heavy (GIL released in kernels);
* :class:`ProcessPool` — ``multiprocessing``; genuine parallelism, the
  closest analogue of SNOW's socket cluster.

All backends preserve input ordering of results, which the pipeline's
deterministic output depends on.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from concurrent.futures import ThreadPoolExecutor
from types import TracebackType
from typing import Callable, Protocol, Sequence, TypeVar

from ..errors import PartitionError

__all__ = [
    "WorkerPool",
    "SerialPool",
    "ThreadPool",
    "ProcessPool",
    "make_pool",
]

T = TypeVar("T")
R = TypeVar("R")


class WorkerPool(Protocol):
    """Minimal pool protocol used by the pipeline."""

    @property
    def n_workers(self) -> int: ...

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]: ...

    def close(self) -> None: ...


class SerialPool:
    """Degenerate single-worker pool (the root does everything)."""

    def __init__(self) -> None:
        self._closed = False

    @property
    def n_workers(self) -> int:
        return 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        if self._closed:
            raise PartitionError("pool is closed")
        return [fn(item) for item in items]

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "SerialPool":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


class ThreadPool:
    """Thread-backed pool; best for numpy-heavy task functions."""

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise PartitionError("n_workers must be >= 1")
        self._n = n_workers
        self._executor = ThreadPoolExecutor(max_workers=n_workers)

    @property
    def n_workers(self) -> int:
        return self._n

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return list(self._executor.map(fn, items))

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ThreadPool":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


class ProcessPool:
    """``multiprocessing``-backed pool (the SNOW socket-cluster analogue).

    Task functions and items must be picklable.  Results preserve input
    order.  Worker count defaults to the CPU count, like SNOW's "set of
    workers equal to the number of available CPUs".
    """

    def __init__(self, n_workers: int | None = None) -> None:
        self._n = n_workers or os.cpu_count() or 1
        if self._n < 1:
            raise PartitionError("n_workers must be >= 1")
        ctx = mp.get_context("fork") if hasattr(os, "fork") else mp.get_context()
        self._pool = ctx.Pool(processes=self._n)

    @property
    def n_workers(self) -> int:
        return self._n

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        if not items:
            return []
        chunksize = max(1, len(items) // (self._n * 4))
        return self._pool.map(fn, items, chunksize=chunksize)

    def close(self) -> None:
        self._pool.close()
        self._pool.join()

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


def make_pool(kind: str, n_workers: int | None = None) -> WorkerPool:
    """Factory: ``'serial'``, ``'thread'``, or ``'process'``."""
    if kind == "serial":
        return SerialPool()
    if kind == "thread":
        return ThreadPool(n_workers or os.cpu_count() or 1)
    if kind == "process":
        return ProcessPool(n_workers)
    raise PartitionError(f"unknown pool kind {kind!r}")
