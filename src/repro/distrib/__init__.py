"""Rank-based distributed runtime — the Repast HPC / MPI substitute.

The paper's stack uses MPI twice:

1. **chiSIM itself** (Repast HPC, 256 processes): "Places are distributed
   among compute processes, and agents are free to move between processes
   ... A spatially partitioned set of locations ... assigns locations to
   compute processes with the objective of minimizing person agent movement
   between processes."
2. **The synthesis pipeline** (SNOW/Rmpi): a master/worker task pool that
   maps per-place work onto workers.

MPI is unavailable here, so this subpackage provides both patterns natively:

* :mod:`repro.distrib.comm` + :mod:`repro.distrib.simcluster` — a BSP
  (bulk-synchronous) communicator with MPI-style collectives, executed by
  an in-process cluster of lock-stepped threads.  Every payload is metered,
  so communication volume (the quantity the spatial partitioning minimizes)
  is a first-class measurable.
* :mod:`repro.distrib.taskpool` — SNOW-style worker pools (serial,
  thread, and real ``multiprocessing`` backends) used by the synthesis
  pipeline.
* :mod:`repro.distrib.partition` — place→rank partitioning: random and
  round-robin baselines, weighted recursive coordinate bisection, and
  movement-graph refinement.
* :mod:`repro.distrib.dmodel` — the distributed model driver, which must
  reproduce the serial engine's event stream exactly (a test invariant).
"""

from .comm import Communicator, TrafficStats
from .simcluster import SimCluster
from .proccluster import ProcessBspCluster, ProcessCommunicator
from .taskpool import (
    WorkerPool,
    SerialPool,
    ThreadPool,
    ProcessPool,
    RetryPolicy,
    PoolReport,
    make_pool,
)
from .partition import (
    PlacePartition,
    random_partition,
    round_robin_partition,
    spatial_partition,
    refine_partition,
    movement_matrix,
    estimate_migration,
)
from .migration import MIGRANT_DTYPE, pack_migrants, unpack_migrants
from .dmodel import DistributedSimulation, DistributedRunResult
from .ddisease import DistributedEpidemicSimulation, EpidemicRunResult
from .shardsynth import (
    STRATEGIES,
    ShardPlan,
    ShardSynthesisReport,
    ShardedTileCache,
    log_horizon,
    plan_shards,
    shard_synthesize,
)

__all__ = [
    "Communicator",
    "TrafficStats",
    "SimCluster",
    "ProcessBspCluster",
    "ProcessCommunicator",
    "STRATEGIES",
    "ShardPlan",
    "ShardSynthesisReport",
    "ShardedTileCache",
    "log_horizon",
    "plan_shards",
    "shard_synthesize",
    "WorkerPool",
    "SerialPool",
    "ThreadPool",
    "ProcessPool",
    "RetryPolicy",
    "PoolReport",
    "make_pool",
    "PlacePartition",
    "random_partition",
    "round_robin_partition",
    "spatial_partition",
    "refine_partition",
    "movement_matrix",
    "estimate_migration",
    "MIGRANT_DTYPE",
    "pack_migrants",
    "unpack_migrants",
    "DistributedSimulation",
    "DistributedRunResult",
    "DistributedEpidemicSimulation",
    "EpidemicRunResult",
]
