"""Place-sharded synthesis: scale the whole path past one process.

The collocation adjacency is additive over places as well as time: every
log record belongs to exactly one place and collocation only happens
within a place, so for any partition of the place set into shards

    ``A = Σ_s A_s``   where ``A_s`` uses only shard *s*'s places,

and the canonical upper-triangular CSR of the sum is unique — summing
per-shard canonical partials is **bit-identical** to single-process
synthesis, whatever the partition.  That makes place sharding a pure
parallelism/memory win: each shard of a
:class:`~repro.distrib.proccluster.ProcessBspCluster` owns its own log
slices, interval packs, and (via :class:`ShardedTileCache`) tile cache,
touching only records at its places; a reduce stage folds the partials.

Sharding is planned once (:func:`plan_shards`): one pass over the window
estimates each place's true pairwise-product flops (the
``balance_by_work`` weight, ``Σ_seg count²``) and records which log files
mention which places.  Per-rank simulation logs have place locality, so a
spatial shard partition aligned with the simulated ranks means each shard
decodes roughly ``1/N`` of the files — the plan's ``shard_paths`` skips
files that cannot contain a shard's places entirely.

Partition strategies (``STRATEGIES``):

* ``"round-robin"`` — cyclic place assignment; count-balanced, ignores
  both work and locality (the baseline the others must beat);
* ``"spatial"`` — weighted recursive coordinate bisection over place
  coordinates (:func:`~repro.distrib.partition.spatial_partition`),
  weighted by estimated work; place-id order stands in for geometry when
  no coordinates are given (synthetic populations lay places out so that
  nearby ids are nearby in space — and, more importantly, in the same
  rank log);
* ``"refined"`` — spatial, then **file alignment**: rank logs are
  place-local, so whole per-file place groups snap onto the shard
  already holding the plurality of their work, greedy whole-group moves
  close the remaining work gap, and single-place moves run only if the
  aligned partition is still above tolerance.  Alignment keeps every
  file's places on one shard, so each shard decodes only its own files
  instead of masking away most of a shared decode.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np
import scipy.sparse as sp

from ..errors import SynthesisError
from ..evlog.multifile import LogSet, try_slice_descriptor
from ..evlog.reader import SliceDescriptor, read_slice_columns
from ..obs import default_registry, get_collector, start_span
from ..obs.trace import capture_spans
from .partition import PlacePartition, round_robin_partition, spatial_partition
from .proccluster import ProcessBspCluster

__all__ = [
    "STRATEGIES",
    "ShardPlan",
    "ShardSynthesisReport",
    "ShardedTileCache",
    "log_horizon",
    "plan_shards",
    "shard_synthesize",
]

#: place-partition strategies :func:`plan_shards` accepts
STRATEGIES = ("round-robin", "spatial", "refined")


def _check_strategy(strategy: str) -> None:
    if strategy not in STRATEGIES:
        raise SynthesisError(
            f"unknown shard strategy {strategy!r}; choose from {STRATEGIES}"
        )


def log_horizon(log_set: "LogSet") -> int:
    """Last simulation hour any intact log chunk reaches (chunk-index
    metadata only, damaged files skipped).  0 with no records."""
    from ..errors import LogFormatError
    from ..evlog.reader import LogReader

    t_max = 0
    for path in log_set.paths:
        try:
            with LogReader(path, use_mmap=True) as reader:
                for chunk in reader.chunks:
                    t_max = max(t_max, int(chunk.t_max))
        except LogFormatError:
            continue
    return t_max


# --------------------------------------------------------------------------
# planning


@dataclass
class ShardPlan:
    """A place→shard assignment plus everything needed to execute it.

    Built once per (log set, window) by :func:`plan_shards`; reused by
    every :func:`shard_synthesize` call and :class:`ShardedTileCache`
    over the same logs.
    """

    partition: PlacePartition
    #: per place, the window's true-flop work estimate (``Σ_seg count²``)
    place_work: np.ndarray
    #: per intact log file, sorted unique place ids seen in the window
    file_places: list[np.ndarray]
    #: intact log files, aligned with ``file_places``
    paths: list[str]
    #: damaged files skipped by the plan scan (non-strict mode)
    quarantined: list[str]
    #: zero-copy descriptors for ``paths`` over the planning window
    descriptors: list[SliceDescriptor]
    t0: int
    t1: int
    strategy: str

    @property
    def n_shards(self) -> int:
        return self.partition.n_ranks

    @property
    def n_places(self) -> int:
        return self.partition.n_places

    def shard_places(self, shard: int) -> np.ndarray:
        return self.partition.places_of_rank(shard)

    def shard_mask(self, shard: int) -> np.ndarray:
        """Boolean place filter for one shard (``TileCache.place_mask``)."""
        return self.partition.assignment == shard

    def shard_file_indices(self, shard: int) -> list[int]:
        """Indices into ``paths`` of files that mention this shard's places.

        This is where place locality pays: a file whose place set misses
        the shard entirely is never opened, let alone decoded.
        """
        mask = self.shard_mask(shard)
        return [
            i
            for i, pl in enumerate(self.file_places)
            if len(pl) and mask[pl].any()
        ]

    def shard_work(self) -> np.ndarray:
        """Total estimated work per shard."""
        return self.partition.rank_weights(self.place_work.astype(np.float64))

    @property
    def imbalance(self) -> float:
        """max/mean shard work ratio (1.0 = perfect)."""
        return self.partition.imbalance(self.place_work.astype(np.float64))

    def digest(self) -> str:
        """Stable identity of the assignment (cache/config digests)."""
        h = hashlib.sha256()
        h.update(self.partition.assignment.tobytes())
        h.update(np.int64(self.partition.n_ranks).tobytes())
        h.update(self.strategy.encode())
        return h.hexdigest()


def _rebalance_by_work(
    assignment: np.ndarray,
    work: np.ndarray,
    n_shards: int,
    max_moves: int = 256,
) -> np.ndarray:
    """Greedy refinement: move single places max→min shard while the
    worst shard's load keeps dropping.  Terminates: every accepted move
    strictly reduces ``max(loads)`` or the max-loaded shard's load."""
    assignment = assignment.copy()
    loads = np.bincount(assignment, weights=work, minlength=n_shards)
    for _ in range(max_moves):
        src = int(np.argmax(loads))
        dst = int(np.argmin(loads))
        if src == dst:
            break
        gap = loads[src] - loads[dst]
        if gap <= 0:
            break
        members = np.flatnonzero(assignment == src)
        w = work[members]
        # best single move: the largest place that still fits in the gap
        # (moving anything heavier would just swap which shard is worst)
        fits = np.flatnonzero(w * 2 < gap)
        if not len(fits):
            break
        pick = members[fits[np.argmax(w[fits])]]
        delta = float(work[pick])
        if delta <= 0:
            break
        assignment[pick] = dst
        loads[src] -= delta
        loads[dst] += delta
    return assignment


#: refined partitions above this work imbalance fall back to
#: locality-breaking single-place moves
REFINE_TOL = 1.15


def _align_to_files(
    assignment: np.ndarray,
    work: np.ndarray,
    file_places: Sequence[np.ndarray],
    n_shards: int,
    max_moves: int = 64,
) -> np.ndarray:
    """Snap file-exclusive place groups onto single shards.

    Rank logs are place-local, so a whole file's places can live on one
    shard without splitting any decode across shards — each shard then
    reads only the files it owns.  Groups first snap to the shard
    already holding the plurality of their work (preserving the spatial
    seed's character), then greedy whole-group moves max→min close the
    remaining work gap.  Places seen in more than one file keep their
    seed assignment; the caller's place-level fallback handles them.
    """
    assignment = assignment.copy()
    multiplicity = np.zeros(len(work), dtype=np.int64)
    for members in file_places:
        multiplicity[members] += 1

    groups: list[np.ndarray] = []
    group_work: list[float] = []
    for members in file_places:
        members = members[multiplicity[members] == 1]
        if not len(members):
            continue
        per_shard = np.bincount(
            assignment[members],
            weights=work[members].astype(np.float64),
            minlength=n_shards,
        )
        target = int(np.argmax(per_shard))
        assignment[members] = target
        groups.append(members)
        group_work.append(float(work[members].sum()))

    loads = np.bincount(
        assignment, weights=work.astype(np.float64), minlength=n_shards
    )
    owner = [int(assignment[g[0]]) for g in groups]
    for _ in range(max_moves):
        src = int(np.argmax(loads))
        dst = int(np.argmin(loads))
        gap = loads[src] - loads[dst]
        if src == dst or gap <= 0:
            break
        candidates = [
            i
            for i, (o, w) in enumerate(zip(owner, group_work))
            if o == src and 0 < w * 2 < gap
        ]
        if not candidates:
            break
        pick = max(candidates, key=lambda i: group_work[i])
        assignment[groups[pick]] = dst
        owner[pick] = dst
        loads[src] -= group_work[pick]
        loads[dst] += group_work[pick]
    return assignment


def plan_shards(
    log_dir: "str | Path | LogSet",
    n_shards: int,
    t0: int,
    t1: int,
    strategy: str = "spatial",
    coords: np.ndarray | None = None,
    n_places: int | None = None,
    strict: bool = False,
    backend: str | None = None,
) -> ShardPlan:
    """Scan the window once and partition places into ``n_shards``.

    The scan builds one interval pack per intact file (exactly the
    synthesis stage-2 computation) to obtain each place's true pairwise
    work estimate — the same ``Σ_seg count²`` that ``balance_by_work``
    balances batches with — plus the per-file place sets that let shards
    skip irrelevant files.  Planning cost is one synthesis pass, amortized
    over every subsequent sharded query on the same logs.

    ``coords`` (``(n_places, d)``) feeds the spatial strategies; without
    them, place id stands in as a 1-D coordinate.  ``n_places`` defaults
    to one past the highest place id seen in the window.
    """
    from ..core.intervals import build_interval_pack_columns

    if n_shards < 1:
        raise SynthesisError("n_shards must be >= 1")
    _check_strategy(strategy)
    log_set = log_dir if isinstance(log_dir, LogSet) else LogSet(log_dir)

    paths: list[str] = []
    quarantined: list[str] = []
    descriptors: list[SliceDescriptor] = []
    file_places: list[np.ndarray] = []
    works: list[tuple[np.ndarray, np.ndarray]] = []
    max_place = -1
    for path in log_set.paths:
        descriptor, reason = try_slice_descriptor(path, t0, t1)
        if descriptor is None:
            if strict:
                raise SynthesisError(f"damaged log file {path}: {reason}")
            quarantined.append(str(path))
            continue
        paths.append(str(path))
        descriptors.append(descriptor)
        starts, stops, person, place = read_slice_columns(descriptor)
        if not len(starts):
            file_places.append(np.empty(0, dtype=np.int64))
            continue
        pack = build_interval_pack_columns(
            starts, stops, person, place, t0, t1, backend=backend
        )
        file_places.append(pack.places.astype(np.int64))
        works.append((pack.places.astype(np.int64), pack.place_work))
        max_place = max(max_place, int(pack.places[-1]))

    if n_places is None:
        n_places = max_place + 1
    if n_places < max_place + 1:
        raise SynthesisError(
            f"n_places={n_places} but the window references place {max_place}"
        )
    if n_places < 1:
        raise SynthesisError("the window contains no records to shard")

    place_work = np.zeros(n_places, dtype=np.int64)
    for ids, w in works:
        # a place split across files double-counts slightly — fine for a
        # balancing weight, exact per-file work is what each shard pays
        np.add.at(place_work, ids, w)

    if coords is not None:
        coords = np.asarray(coords, dtype=np.float64)
        if coords.ndim != 2 or len(coords) != n_places:
            raise SynthesisError("coords must be (n_places, d)")
    if strategy == "round-robin":
        partition = round_robin_partition(n_places, n_shards)
    else:
        geo = (
            coords
            if coords is not None
            else np.arange(n_places, dtype=np.float64).reshape(-1, 1)
        )
        partition = spatial_partition(
            geo, place_work.astype(np.float64), n_shards
        )
        if strategy == "refined":
            aligned = _align_to_files(
                partition.assignment, place_work, file_places, n_shards
            )
            partition = PlacePartition(aligned, n_shards)
            if partition.imbalance(place_work.astype(np.float64)) > REFINE_TOL:
                # balance trumps locality: break file groups with
                # single-place moves only when alignment left a shard
                # meaningfully overloaded
                partition = PlacePartition(
                    _rebalance_by_work(
                        aligned, place_work.astype(np.float64), n_shards
                    ),
                    n_shards,
                )
    return ShardPlan(
        partition=partition,
        place_work=place_work,
        file_places=file_places,
        paths=paths,
        quarantined=quarantined,
        descriptors=descriptors,
        t0=int(t0),
        t1=int(t1),
        strategy=strategy,
    )


# --------------------------------------------------------------------------
# sharded synthesis


@dataclass
class ShardSynthesisReport:
    """Observability for one sharded synthesis run."""

    n_shards: int
    strategy: str
    t0: int
    t1: int
    #: per shard: window records decoded, partial nnz, wall seconds
    shard_records: list[int] = field(default_factory=list)
    shard_nnz: list[int] = field(default_factory=list)
    shard_seconds: list[float] = field(default_factory=list)
    #: wall seconds folding the per-shard partials at the root
    reduce_seconds: float = 0.0
    #: estimated-work imbalance of the executed plan (max/mean)
    imbalance: float = 1.0
    quarantined: list[str] = field(default_factory=list)

    @property
    def n_records(self) -> int:
        return int(sum(self.shard_records))

    def summary(self) -> str:
        lines = [
            f"shards           {self.n_shards:>12,}",
            f"strategy         {self.strategy:>12}",
            f"records          {self.n_records:>12,}",
            f"work imbalance   {self.imbalance:>12.3f}",
            f"reduce seconds   {self.reduce_seconds:>12.4f}",
        ]
        for s in range(self.n_shards):
            lines.append(
                f"  shard {s:<3} records {self.shard_records[s]:>10,}  "
                f"nnz {self.shard_nnz[s]:>10,}  "
                f"{self.shard_seconds[s]:>8.3f}s"
            )
        if self.quarantined:
            lines.append(f"quarantined      {len(self.quarantined):>12,} file(s)")
        return "\n".join(lines)


def _publish_shard_metrics(report: ShardSynthesisReport) -> None:
    """Mirror one run's shard breakdown into the process metrics registry
    (``repro metrics`` shows these)."""
    reg = default_registry()
    reg.counter("shard.records").inc(report.n_records)
    reg.counter("shard.nnz").inc(int(sum(report.shard_nnz)))
    reg.counter("shard.reduce_seconds").inc(report.reduce_seconds)
    reg.gauge("shard.imbalance").set(report.imbalance)
    reg.gauge("shard.count").set(report.n_shards)
    for s in range(report.n_shards):
        reg.gauge(f"shard.{s}.records").set(report.shard_records[s])
        reg.gauge(f"shard.{s}.nnz").set(report.shard_nnz[s])
        reg.gauge(f"shard.{s}.seconds").set(report.shard_seconds[s])


def _shard_partial(
    shard: int,
    shard_plan: ShardPlan,
    descriptors: Sequence[SliceDescriptor],
    file_indices: Sequence[int],
    n_persons: int,
    t0: int,
    t1: int,
    backend: str | None,
) -> tuple[sp.csr_matrix, dict, list[dict]]:
    """One shard's work: decode its files, mask to its places, build
    packs, and produce the canonical upper-triangular partial CSR."""
    from ..core.adjacency import empty_adjacency
    from ..core.intervals import build_interval_pack_columns, sum_pack_adjacency
    from ..core.pipeline import _merge_duplicate_packs

    mask = shard_plan.shard_mask(shard)
    started = time.perf_counter()
    with capture_spans() as spans:
        with start_span(
            "shard.build", attrs={"shard": shard, "files": len(file_indices)}
        ) as span:
            packs = []
            n_records = 0
            for i in file_indices:
                starts, stops, person, place = read_slice_columns(
                    descriptors[i]
                )
                if not len(starts):
                    continue
                if int(place.max()) >= len(mask):
                    raise SynthesisError(
                        "records reference places outside the shard plan"
                    )
                keep = mask[place]
                if not keep.any():
                    continue
                n_records += int(keep.sum())
                packs.append(
                    build_interval_pack_columns(
                        starts[keep],
                        stops[keep],
                        person[keep],
                        place[keep],
                        t0,
                        t1,
                        backend=backend,
                    )
                )
            # a place split across this shard's files must be union-merged
            # before the product, exactly as zero-copy dispatch does
            packs = _merge_duplicate_packs(packs)
            if packs:
                partial = sum_pack_adjacency(packs, n_persons, backend=backend)
            else:
                partial = empty_adjacency(n_persons)
            span.set_attr("records", n_records)
            span.set_attr("nnz", int(partial.nnz))
    stats = {
        "records": n_records,
        "nnz": int(partial.nnz),
        "seconds": time.perf_counter() - started,
    }
    return partial, stats, spans


def shard_synthesize(
    log_dir: "str | Path | LogSet",
    n_persons: int,
    t0: int,
    t1: int,
    n_shards: int = 1,
    strategy: str = "spatial",
    shard_plan: ShardPlan | None = None,
    plan: Any = None,
    coords: np.ndarray | None = None,
    timeout: float = 600.0,
):
    """Synthesize the window across a place-sharded process cluster.

    Each shard of a :class:`~repro.distrib.proccluster.ProcessBspCluster`
    decodes only the log files that mention its places (zero-copy
    descriptors, columnar decode), masks the place columns to its shard,
    builds interval packs, and returns its canonical partial adjacency;
    the root folds the partials — **bit-identical** to single-process
    synthesis for every shard count and strategy (property-tested).

    ``shard_plan`` reuses an existing :func:`plan_shards` result (it must
    cover the same window); otherwise one is computed here.  ``plan`` is
    an optional :class:`~repro.core.plan.SynthesisPlan` supplying the
    backend/strict knobs.

    Returns ``(network, report)`` like the single-process pipeline,
    with a :class:`ShardSynthesisReport`.
    """
    from ..core.network import CollocationNetwork
    from ..core.pipeline import _check_kernel

    backend = None
    strict = False
    if plan is not None:
        _check_kernel(plan.kernel)
        if plan.kernel != "intervals":
            raise SynthesisError(
                "sharded synthesis runs the interval kernel only"
            )
        backend = plan.backend
        strict = plan.strict
    if n_persons <= 0:
        raise SynthesisError("n_persons must be positive")

    if shard_plan is None:
        shard_plan = plan_shards(
            log_dir,
            n_shards,
            t0,
            t1,
            strategy=strategy,
            coords=coords,
            strict=strict,
            backend=backend,
        )
    else:
        n_shards = shard_plan.n_shards
        strategy = shard_plan.strategy
    if shard_plan.t0 > t0 or shard_plan.t1 < t1:
        raise SynthesisError(
            f"shard plan covers [{shard_plan.t0}, {shard_plan.t1}), "
            f"cannot serve [{t0}, {t1})"
        )

    # descriptors are window-specific: reuse the plan's when the window
    # matches, rebuild (skipping already-quarantined files) otherwise
    if (shard_plan.t0, shard_plan.t1) == (int(t0), int(t1)):
        descriptors = shard_plan.descriptors
    else:
        descriptors = []
        for path in shard_plan.paths:
            descriptor, reason = try_slice_descriptor(path, t0, t1)
            if descriptor is None:
                raise SynthesisError(f"damaged log file {path}: {reason}")
            descriptors.append(descriptor)

    file_indices = [
        shard_plan.shard_file_indices(s) for s in range(n_shards)
    ]

    def rank_fn(comm, shard: int):
        return _shard_partial(
            shard,
            shard_plan,
            descriptors,
            file_indices[shard],
            n_persons,
            t0,
            t1,
            backend,
        )

    with start_span(
        "shard_synthesize",
        attrs={"shards": n_shards, "strategy": strategy, "t0": t0, "t1": t1},
    ):
        result = ProcessBspCluster(n_shards).run(
            rank_fn,
            rank_args=[(s,) for s in range(n_shards)],
            timeout=timeout,
        )
        report = ShardSynthesisReport(
            n_shards=n_shards,
            strategy=strategy,
            t0=int(t0),
            t1=int(t1),
            imbalance=shard_plan.imbalance,
            quarantined=list(shard_plan.quarantined),
        )
        partials = []
        for partial, stats, spans in result.returns:
            partials.append(partial)
            report.shard_records.append(stats["records"])
            report.shard_nnz.append(stats["nnz"])
            report.shard_seconds.append(stats["seconds"])
            # per-shard span trees, parent links intact
            get_collector().absorb(spans)
        started = time.perf_counter()
        with start_span("shard.reduce", attrs={"parts": len(partials)}):
            adjacency = partials[0]
            for partial in partials[1:]:
                # canonical + canonical -> canonical: order-independent,
                # bit-identical to the single-process accumulate
                adjacency = adjacency + partial
        report.reduce_seconds = time.perf_counter() - started
    _publish_shard_metrics(report)
    return CollocationNetwork(adjacency, t0=int(t0), t1=int(t1)), report


# --------------------------------------------------------------------------
# sharded tile cache


class _ShardPoolFacade:
    """Just enough pool surface for report/service bookkeeping."""

    def __init__(self, n_workers: int) -> None:
        self.n_workers = n_workers


class ShardedTileCache:
    """N per-shard :class:`~repro.core.tilecache.TileCache` + a reduce tier.

    Each shard's cache sees only that shard's places (its ``place_mask``
    is the shard mask, intersected with any layer mask), owns a slice of
    the nnz budget, and persists into its own subdirectory.  Queries fan
    out across shards on a thread pool and the partial networks are
    folded — bit-identical to one unsharded cache over the same logs,
    which is itself bit-identical to direct synthesis.

    Satisfies the full cache interface the query service and
    ``synthesize_from_logs(cache=...)`` expect: ``query_window``,
    ``warm``, ``horizon``, ``close``, ``digest``, ``stats``,
    ``cached_nnz``, ``quarantined``, ``quarantined_tiles``.
    """

    def __init__(
        self,
        log_dir: "str | Path | LogSet",
        n_persons: int,
        shard_plan: ShardPlan,
        tile_hours: int = 24,
        budget_nnz: int | None = None,
        cache_dir: "str | Path | None" = None,
        dispatch: str = "value",
        strict: bool = False,
        place_mask: np.ndarray | None = None,
        backend: str | None = None,
        plan: Any = None,
    ) -> None:
        from ..core.tilecache import TileCache

        if plan is not None:
            tile_hours = plan.tile_hours
            budget_nnz = plan.cache_budget_nnz
            dispatch = plan.dispatch
            strict = plan.strict
            backend = plan.backend
            if cache_dir is None:
                cache_dir = plan.cache_dir
        self.shard_plan = shard_plan
        self.n_persons = int(n_persons)
        self.n_shards = shard_plan.n_shards
        self.dispatch = dispatch
        self.reduce_seconds = 0.0
        log_set = log_dir if isinstance(log_dir, LogSet) else LogSet(log_dir)
        per_shard_budget = (
            max(1, budget_nnz // self.n_shards) if budget_nnz else None
        )
        self.shards: list[TileCache] = []
        for s in range(self.n_shards):
            mask = shard_plan.shard_mask(s)
            if place_mask is not None:
                if len(place_mask) != len(mask):
                    raise SynthesisError(
                        "place_mask must align with the shard plan's places"
                    )
                mask = mask & np.asarray(place_mask, dtype=bool)
            self.shards.append(
                TileCache(
                    log_set,
                    n_persons,
                    tile_hours=tile_hours,
                    budget_nnz=per_shard_budget,
                    cache_dir=(
                        Path(cache_dir) / f"shard_{s:03d}"
                        if cache_dir is not None
                        else None
                    ),
                    dispatch=dispatch,
                    strict=strict,
                    place_mask=mask,
                    backend=backend,
                )
            )
        self.backend = self.shards[0].backend
        self.pool = _ShardPoolFacade(self.n_shards)
        self._executor = ThreadPoolExecutor(
            max_workers=self.n_shards,
            thread_name_prefix="shardcache",
        )
        h = hashlib.sha256()
        h.update(shard_plan.digest().encode())
        for shard in self.shards:
            h.update(shard.digest.encode())
        self.digest = h.hexdigest()

    # -- aggregation --------------------------------------------------------

    @property
    def quarantined(self) -> list[str]:
        seen: dict[str, None] = {}
        for shard in self.shards:
            for name in shard.quarantined:
                seen[name] = None
        return list(seen)

    @property
    def quarantined_tiles(self) -> list[str]:
        out: list[str] = []
        for shard in self.shards:
            out.extend(shard.quarantined_tiles)
        return out

    @property
    def cached_nnz(self) -> int:
        return int(sum(shard.cached_nnz for shard in self.shards))

    @property
    def stats(self):
        """Aggregated :class:`~repro.core.tilecache.TileCacheStats`."""
        from ..core.tilecache import TileCacheStats

        total = TileCacheStats()
        for shard in self.shards:
            s = shard.stats
            total.queries = max(total.queries, s.queries)
            total.tile_hits += s.tile_hits
            total.fringe_hits += s.fringe_hits
            total.disk_hits += s.disk_hits
            total.tiles_built += s.tiles_built
            total.tiles_merged += s.tiles_merged
            total.evictions += s.evictions
            total.invalidated += s.invalidated
            total.tiles_quarantined += s.tiles_quarantined
            total.fringe_hours += s.fringe_hours
        return total

    # -- cache interface ----------------------------------------------------

    def horizon(self) -> int:
        return max(shard.horizon() for shard in self.shards)

    def warm(self, t0: int, t1: int) -> int:
        futures = [
            self._executor.submit(shard.warm, t0, t1)
            for shard in self.shards
        ]
        return int(sum(f.result() for f in futures))

    def query_window(self, t0: int, t1: int):
        """Fan a window query across shards and fold the partials."""
        with start_span(
            "shard_cache.query", attrs={"shards": self.n_shards}
        ):
            futures = [
                self._executor.submit(shard.query_window, t0, t1)
                for shard in self.shards
            ]
            networks = [f.result() for f in futures]
            started = time.perf_counter()
            with start_span("shard.reduce", attrs={"parts": len(networks)}):
                out = networks[0]
                for net in networks[1:]:
                    from ..core.network import CollocationNetwork

                    out = CollocationNetwork(
                        out.adjacency + net.adjacency, t0=out.t0, t1=out.t1
                    )
            elapsed = time.perf_counter() - started
        self.reduce_seconds += elapsed
        reg = default_registry()
        reg.counter("shard.reduce_seconds").inc(elapsed)
        reg.gauge("shard.imbalance").set(self.shard_plan.imbalance)
        reg.gauge("shard.count").set(self.n_shards)
        return out

    def close(self) -> None:
        for shard in self.shards:
            shard.close()
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ShardedTileCache":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
