"""Real-process BSP cluster (fork + queues).

:class:`~repro.distrib.simcluster.SimCluster` runs ranks as lock-stepped
threads — perfect for determinism and traffic metering, irrelevant for
wall-clock speed.  :class:`ProcessBspCluster` runs the *same SPMD rank
functions* as genuine OS processes, the closest a pure-Python stack gets
to the paper's MPI deployment:

* ranks are forked children (closures work without pickling, like an
  ``mpiexec`` launch inheriting the binary image);
* each rank owns an inbox (``multiprocessing.Queue``); collectives are
  sequence-tagged messages so consecutive collectives never interleave;
* barriers are ``multiprocessing.Barrier``;
* return values and traffic stats ship back over a result queue.

The communicator satisfies the same protocol as
:class:`~repro.distrib.comm.Communicator`, so any rank function written
for the simulated cluster runs here unchanged — verified by running the
full distributed model on both and comparing event streams bit-for-bit.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Any, Callable, Sequence

from ..errors import CommError
from .comm import TrafficStats, payload_nbytes
from .simcluster import ClusterRunResult

__all__ = ["ProcessBspCluster", "ProcessCommunicator"]


class ProcessCommunicator:
    """MPI-like collectives over per-rank inbox queues.

    Message framing: ``(seq, src, payload)``.  Each collective increments
    ``seq``; receivers buffer out-of-order arrivals per sequence number,
    so back-to-back collectives cannot cross-contaminate.
    """

    def __init__(
        self,
        rank: int,
        inboxes: list[mp.Queue],
        barrier: mp.Barrier,  # type: ignore[valid-type]
    ) -> None:
        self.rank = rank
        self._inboxes = inboxes
        self._barrier = barrier
        self._seq = 0
        self._pending: dict[tuple[int, int], Any] = {}
        self.stats = TrafficStats()

    @property
    def size(self) -> int:
        return len(self._inboxes)

    # -- plumbing ---------------------------------------------------------

    def _send(self, dest: int, seq: int, payload: Any) -> None:
        self._inboxes[dest].put((seq, self.rank, payload))

    def _recv(self, src: int, seq: int, timeout: float = 300.0) -> Any:
        key = (seq, src)
        while key not in self._pending:
            try:
                got_seq, got_src, payload = self._inboxes[self.rank].get(
                    timeout=timeout
                )
            except Exception as exc:  # queue.Empty and friends
                raise CommError(
                    f"rank {self.rank} timed out waiting for "
                    f"(seq={seq}, src={src})"
                ) from exc
            self._pending[(got_seq, got_src)] = payload
        return self._pending.pop(key)

    # -- collectives ---------------------------------------------------------

    def barrier(self) -> None:
        """Synchronize all ranks."""
        try:
            self._barrier.wait()
        except Exception as exc:
            raise CommError("process barrier broken") from exc
        self.stats.record("barrier", 0, 0)

    def alltoall(self, payloads: Sequence[Any]) -> list[Any]:
        """``payloads[j]`` delivered to rank *j*; returns by source."""
        if len(payloads) != self.size:
            raise CommError(
                f"alltoall needs {self.size} payloads, got {len(payloads)}"
            )
        seq = self._seq
        self._seq += 1
        sent_bytes = 0
        n_msg = 0
        for dest, payload in enumerate(payloads):
            if dest == self.rank:
                continue
            self._send(dest, seq, payload)
            nbytes = payload_nbytes(payload)
            sent_bytes += nbytes
            if nbytes:
                n_msg += 1
        received: list[Any] = [None] * self.size
        received[self.rank] = payloads[self.rank]
        for src in range(self.size):
            if src != self.rank:
                received[src] = self._recv(src, seq)
        self.stats.record("alltoall", n_msg, sent_bytes)
        return received

    def allgather(self, obj: Any) -> list[Any]:
        """Everyone contributes one object; everyone gets the full list."""
        return self.alltoall([obj] * self.size)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Collect one object per rank at *root* (None elsewhere)."""
        seq = self._seq
        self._seq += 1
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for src in range(self.size):
                if src != root:
                    out[src] = self._recv(src, seq)
            self.stats.record("gather", 0, 0)
            return out
        self._send(root, seq, obj)
        self.stats.record("gather", 1, payload_nbytes(obj))
        return None

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast *obj* from *root* to every rank."""
        seq = self._seq
        self._seq += 1
        if self.rank == root:
            for dest in range(self.size):
                if dest != root:
                    self._send(dest, seq, obj)
            self.stats.record(
                "bcast", self.size - 1, payload_nbytes(obj) * (self.size - 1)
            )
            return obj
        out = self._recv(root, seq)
        self.stats.record("bcast", 0, 0)
        return out

    def allreduce_sum(self, value: Any) -> Any:
        """Sum across ranks (numbers or numpy arrays)."""
        import numpy as np

        gathered = self.allgather(value)
        total = gathered[0]
        if isinstance(total, np.ndarray):
            total = total.copy()
            for v in gathered[1:]:
                total += v
            return total
        return sum(gathered[1:], start=total)

    def reduce_with(
        self, value: Any, fn: Callable[[Any, Any], Any], root: int = 0
    ) -> Any:
        """Gather at *root* and fold with *fn*."""
        gathered = self.gather(value, root=root)
        if gathered is None:
            return None
        acc = gathered[0]
        for v in gathered[1:]:
            acc = fn(acc, v)
        return acc


class ProcessBspCluster:
    """Run an SPMD rank function on real forked processes.

    Requires a fork-capable platform (POSIX).  Rank functions, their
    closures, and the world they capture are inherited by fork; results
    must be picklable to ship back.
    """

    def __init__(self, n_ranks: int) -> None:
        if n_ranks < 1:
            raise CommError("cluster needs at least one rank")
        if not hasattr(os, "fork"):
            raise CommError("ProcessBspCluster requires a fork platform")
        self.n_ranks = n_ranks

    def run(
        self,
        rank_fn: Callable[..., Any],
        rank_args: Sequence[tuple] | None = None,
        timeout: float = 600.0,
    ) -> ClusterRunResult:
        """Execute ``rank_fn(comm, *args)`` on every rank; gather results."""
        if rank_args is not None and len(rank_args) != self.n_ranks:
            raise CommError("rank_args must match n_ranks")
        ctx = mp.get_context("fork")
        inboxes = [ctx.Queue() for _ in range(self.n_ranks)]
        barrier = ctx.Barrier(self.n_ranks)
        results = ctx.Queue()

        def child(rank: int) -> None:
            comm = ProcessCommunicator(rank, inboxes, barrier)
            try:
                value = rank_fn(
                    comm, *(rank_args[rank] if rank_args is not None else ())
                )
                results.put((rank, "ok", value, comm.stats))
            except BaseException as exc:  # noqa: BLE001 - shipped to parent
                results.put((rank, "error", repr(exc), comm.stats))

        if self.n_ranks == 1:
            comm = ProcessCommunicator(0, inboxes, barrier)
            value = rank_fn(
                comm, *(rank_args[0] if rank_args is not None else ())
            )
            return ClusterRunResult(returns=[value], traffic=[comm.stats])

        procs = [
            ctx.Process(target=child, args=(rank,), daemon=True)
            for rank in range(self.n_ranks)
        ]
        for p in procs:
            p.start()
        returns: list[Any] = [None] * self.n_ranks
        traffic: list[TrafficStats] = [TrafficStats()] * self.n_ranks
        errors: list[tuple[int, str]] = []
        for _ in range(self.n_ranks):
            try:
                rank, status, value, stats = results.get(timeout=timeout)
            except Exception as exc:
                for p in procs:
                    p.terminate()
                raise CommError("rank process died or timed out") from exc
            traffic[rank] = stats
            if status == "ok":
                returns[rank] = value
            else:
                errors.append((rank, value))
        for p in procs:
            p.join(timeout=10.0)
            if p.is_alive():
                p.terminate()
        if errors:
            errors.sort()
            rank, message = errors[0]
            raise CommError(f"rank {rank} failed: {message}")
        return ClusterRunResult(returns=returns, traffic=traffic)
