"""BSP communicator: MPI-style collectives over lock-stepped ranks.

The interface is a deliberately small subset of MPI — the collectives the
distributed model actually needs — with one addition MPI lacks natively:
every call is metered into :class:`TrafficStats`, because "minimizing
person agent movement between processes" is a headline objective of the
paper's partitioning and must be observable.

Payload size accounting favours numpy buffers (``nbytes``); arbitrary
objects fall back to their pickled size.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..errors import CommError, RankDeadError, RankFailureError

__all__ = ["TrafficStats", "Communicator", "payload_nbytes"]


def payload_nbytes(obj: Any) -> int:
    """Approximate wire size of a payload in bytes."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()
        )
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # unpicklable: count nothing rather than crash metering
        return 0


@dataclass
class TrafficStats:
    """Per-rank communication accounting."""

    messages_sent: int = 0
    bytes_sent: int = 0
    collectives: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, n_messages: int, n_bytes: int) -> None:
        self.messages_sent += n_messages
        self.bytes_sent += n_bytes
        self.collectives += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + n_bytes

    def merged(self, others: Sequence["TrafficStats"]) -> "TrafficStats":
        total = TrafficStats(
            messages_sent=self.messages_sent,
            bytes_sent=self.bytes_sent,
            collectives=self.collectives,
            by_kind=dict(self.by_kind),
        )
        for o in others:
            total.messages_sent += o.messages_sent
            total.bytes_sent += o.bytes_sent
            total.collectives += o.collectives
            for k, v in o.by_kind.items():
                total.by_kind[k] = total.by_kind.get(k, 0) + v
        return total


class _SharedBoard:
    """Shared slots + a reusable two-phase barrier for one cluster.

    ``heartbeat_timeout`` arms a liveness deadline on every barrier phase:
    a rank that stops arriving (killed, hung) breaks the barrier for its
    siblings within the deadline instead of deadlocking them.  Per-rank
    arrival counts double as the failure detector — the ranks with the
    fewest arrivals at detection time are the suspects.
    """

    def __init__(self, size: int, heartbeat_timeout: float | None = None) -> None:
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise CommError("heartbeat_timeout must be positive")
        self.size = size
        self.heartbeat_timeout = heartbeat_timeout
        self.slots: list[Any] = [None] * size
        self.matrix: list[list[Any]] = [[None] * size for _ in range(size)]
        self.barrier = threading.Barrier(size)
        # arrivals per rank; each rank writes only its own slot
        self.sync_counts: list[int] = [0] * size

    def suspects(self) -> list[int]:
        """Ranks that have fallen behind the barrier (likely dead)."""
        most = max(self.sync_counts)
        return [r for r, c in enumerate(self.sync_counts) if c < most]

    def sync(self, rank: int | None = None) -> None:
        if rank is not None:
            self.sync_counts[rank] += 1
        try:
            self.barrier.wait(timeout=self.heartbeat_timeout)
        except threading.BrokenBarrierError as exc:  # a rank died mid-collective
            raise RankFailureError(
                "cluster barrier broken (a rank failed or missed its "
                "heartbeat deadline)",
                suspects=self.suspects(),
            ) from exc


class Communicator:
    """One rank's endpoint into the cluster.

    All collectives must be called by **every** rank in the same order —
    standard SPMD discipline; a rank raising an exception breaks the
    barrier and surfaces a :class:`~repro.errors.CommError` on the others
    rather than deadlocking.
    """

    def __init__(self, rank: int, board: _SharedBoard) -> None:
        if not 0 <= rank < board.size:
            raise CommError(f"rank {rank} outside cluster of {board.size}")
        self.rank = rank
        self._board = board
        self.stats = TrafficStats()
        #: set by :meth:`die` — lets tests assert which rank was killed
        self.dead = False

    @property
    def size(self) -> int:
        return self._board.size

    # -- fault injection -------------------------------------------------------

    def die(self) -> None:
        """Simulate this rank being hard-killed mid-step.

        Raises :class:`~repro.errors.RankDeadError`, which the cluster
        runner treats as a silent exit: no barrier abort, no cleanup —
        siblings only learn of the death when the heartbeat deadline
        breaks the next barrier, exactly like a SIGKILLed MPI process.
        """
        self.dead = True
        raise RankDeadError(f"rank {self.rank} killed by fault injection")

    def barrier(self) -> None:
        self._board.sync(self.rank)
        self.stats.record("barrier", 0, 0)

    def alltoall(self, payloads: Sequence[Any]) -> list[Any]:
        """``payloads[j]`` is delivered to rank *j*; returns what every rank
        sent to me, indexed by source rank."""
        if len(payloads) != self.size:
            raise CommError(
                f"alltoall needs {self.size} payloads, got {len(payloads)}"
            )
        row = self._board.matrix[self.rank]
        for j, payload in enumerate(payloads):
            row[j] = payload
        sent = sum(
            payload_nbytes(p) for j, p in enumerate(payloads) if j != self.rank
        )
        n_msg = sum(
            1
            for j, p in enumerate(payloads)
            if j != self.rank and payload_nbytes(p) > 0
        )
        self._board.sync(self.rank)
        received = [self._board.matrix[src][self.rank] for src in range(self.size)]
        self._board.sync(self.rank)  # nobody reuses the matrix until all have read
        self.stats.record("alltoall", n_msg, sent)
        return received

    def allgather(self, obj: Any) -> list[Any]:
        self._board.slots[self.rank] = obj
        self._board.sync(self.rank)
        result = list(self._board.slots)
        self._board.sync(self.rank)
        nbytes = payload_nbytes(obj) * (self.size - 1)
        self.stats.record("allgather", self.size - 1, nbytes)
        return result

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        self._board.slots[self.rank] = obj
        self._board.sync(self.rank)
        result = list(self._board.slots) if self.rank == root else None
        self._board.sync(self.rank)
        if self.rank != root:
            self.stats.record("gather", 1, payload_nbytes(obj))
        else:
            self.stats.record("gather", 0, 0)
        return result

    def bcast(self, obj: Any, root: int = 0) -> Any:
        if self.rank == root:
            self._board.slots[root] = obj
        self._board.sync(self.rank)
        result = self._board.slots[root]
        self._board.sync(self.rank)
        if self.rank == root:
            self.stats.record("bcast", self.size - 1, payload_nbytes(obj) * (self.size - 1))
        else:
            self.stats.record("bcast", 0, 0)
        return result

    def allreduce_sum(self, value: Any) -> Any:
        """Sum across ranks; supports numbers and numpy arrays."""
        gathered = self.allgather(value)
        total = gathered[0]
        if isinstance(total, np.ndarray):
            total = total.copy()
            for v in gathered[1:]:
                total += v
            return total
        return sum(gathered[1:], start=total)

    def reduce_with(self, value: Any, fn: Callable[[Any, Any], Any], root: int = 0) -> Any:
        """Gather to *root* and fold with *fn* (root only; None elsewhere)."""
        gathered = self.gather(value, root=root)
        if gathered is None:
            return None
        acc = gathered[0]
        for v in gathered[1:]:
            acc = fn(acc, v)
        return acc
