"""BENCH-KERNELS — kernel × dispatch × backend synthesis matrix.

Reproduces the ``bench_txt_fourweek`` configuration (8 ranks, 4 simulated
weeks, bench-scale population, batches of 2) and synthesizes the **full
4-week window** under four pipeline configurations:

* ``dense-hours`` kernel, by-value dispatch — the seed baseline;
* ``intervals`` kernel, by-value dispatch;
* ``intervals`` kernel, zero-copy dispatch (byte-range descriptors);
* ``intervals`` kernel, zero-copy dispatch, **masked backend** — the
  compiled masked-triangular SpGEMM with preallocated workspaces.

Emits ``BENCH_synthesis.json`` (records/s, per-stage timings, kernel-stage
timings, speedups, root→worker bytes shipped) and — with ``--check`` —
fails if the interval kernel's measured speedup over the in-run dense
baseline regresses more than 20% against the committed baseline, or if
the masked backend's combined ``collocation_matrices`` + ``adjacency``
stage time is not at least 3x faster (minus the same margin) than the
scipy backend *measured in the same run*.  All gates compare ratios of
same-process measurements, never absolute throughput: every config runs
on the same machine interleaved repeat-by-repeat, so the ratios are
stable across hardware while absolute records/s are not.  The masked
gate is skipped (with a note) when no compiled implementation is
available — CI's pure-fallback leg.

Usage::

    PYTHONPATH=src python benchmarks/bench_synthesis_kernels.py            # print
    PYTHONPATH=src python benchmarks/bench_synthesis_kernels.py --update  # rewrite baseline
    PYTHONPATH=src python benchmarks/bench_synthesis_kernels.py --check   # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

import repro
from repro.core.kernels import compiled_impl
from repro.distrib import DistributedSimulation, SerialPool, spatial_partition
from repro.evlog import LogSet
from repro.sim import Simulation  # noqa: F401  (parity with sibling benches)

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_synthesis.json"

BENCH_PERSONS = 6_000
SEED = 2017
N_RANKS = 8
WEEKS = 4
BATCH_SIZE = 2
REGRESSION_MARGIN = 0.20  # fail --check below 80% of baseline speedup
#: required same-run combined-stage ratio, scipy over masked backend
MASKED_MIN_RATIO = 3.0
REPEATS = 4  # best-of, to shed cold-cache noise

#: (kernel, dispatch, backend); scipy rows keep their historical names
CONFIGS = [
    ("dense-hours", "value", "scipy"),
    ("intervals", "value", "scipy"),
    ("intervals", "zero-copy", "scipy"),
    ("intervals", "zero-copy", "masked"),
]


def config_name(kernel: str, dispatch: str, backend: str) -> str:
    base = f"{kernel}/{dispatch}"
    return base if backend == "scipy" else f"{base}/{backend}"


def generate_logs(log_dir: Path):
    pop = repro.generate_population(
        repro.ScaleConfig(n_persons=BENCH_PERSONS, seed=SEED)
    )
    cfg = repro.SimulationConfig(
        scale=pop.scale,
        duration_hours=WEEKS * repro.HOURS_PER_WEEK,
        n_ranks=N_RANKS,
    )
    part = spatial_partition(
        pop.places.coords(), pop.places.capacity.astype(float), N_RANKS
    )
    DistributedSimulation(pop, cfg, part).run(log_dir=log_dir)
    return pop, LogSet(log_dir)


def measure_once(logs, n_persons, t0, t1, kernel, dispatch, backend):
    pool = SerialPool()
    pool.track_bytes = True
    try:
        tic = time.perf_counter()
        net, report = repro.synthesize_from_logs(
            logs, n_persons, t0, t1,
            batch_size=BATCH_SIZE, pool=pool,
            kernel=kernel, dispatch=dispatch, backend=backend,
        )
        elapsed = time.perf_counter() - tic
    finally:
        pool.close()
    stages = report.timings.stages
    return {
        "seconds": elapsed,
        "records_per_s": report.n_records / elapsed,
        "stages": {k: round(v, 4) for k, v in stages.items()},
        "combined_colloc_adjacency": (
            stages.get("collocation_matrices", 0.0)
            + stages.get("adjacency", 0.0)
        ),
        "kernel_stages": {
            k: round(v, 4) for k, v in sorted(report.kernel_timings.items())
        },
        "bytes_shipped": pool.bytes_shipped,
        "n_records": report.n_records,
        "network": net,
    }


def run_bench() -> dict:
    with tempfile.TemporaryDirectory(prefix="bench_kernels_") as tmp:
        log_dir = Path(tmp)
        pop, logs = generate_logs(log_dir)
        t0, t1 = 0, WEEKS * repro.HOURS_PER_WEEK

        # interleave configs within each repeat: the masked/scipy ratio
        # gate needs both sides measured under the same machine drift.
        # best total time and best combined stage time are tracked
        # independently — a run with the fastest end-to-end seconds is
        # not always the one with the fastest kernel stages
        results: dict = {}
        combined: dict = {}
        for _ in range(REPEATS):
            for kernel, dispatch, backend in CONFIGS:
                name = config_name(kernel, dispatch, backend)
                run = measure_once(
                    logs, pop.n_persons, t0, t1, kernel, dispatch, backend
                )
                combined[name] = min(
                    combined.get(name, float("inf")),
                    run.pop("combined_colloc_adjacency"),
                )
                best = results.get(name)
                if best is None or run["seconds"] < best["seconds"]:
                    results[name] = run

    base = results["dense-hours/value"]
    nets = [r.pop("network") for r in results.values()]
    identical = all(
        (nets[0].adjacency != n.adjacency).nnz == 0 for n in nets[1:]
    )
    for name, r in results.items():
        r["speedup"] = round(base["seconds"] / r["seconds"], 3)
        r["seconds"] = round(r["seconds"], 4)
        r["records_per_s"] = round(r["records_per_s"], 1)
        r["combined_colloc_adjacency"] = round(combined[name], 4)

    scipy_combined = combined["intervals/zero-copy"]
    masked_combined = combined["intervals/zero-copy/masked"]
    backend_gate = {
        "compiled_impl": compiled_impl(),
        "scipy_combined_s": round(scipy_combined, 4),
        "masked_combined_s": round(masked_combined, 4),
        "ratio": (
            round(scipy_combined / masked_combined, 3) if masked_combined else None
        ),
        "required_ratio": MASKED_MIN_RATIO,
    }

    return {
        "bench": "synthesis_kernels",
        "config": {
            "persons": BENCH_PERSONS,
            "seed": SEED,
            "ranks": N_RANKS,
            "weeks": WEEKS,
            "window": [0, WEEKS * repro.HOURS_PER_WEEK],
            "batch_size": BATCH_SIZE,
            "records": base["n_records"],
        },
        "kernels": results,
        "backend_gate": backend_gate,
        "dispatch_bytes": {
            "value": results["intervals/value"]["bytes_shipped"],
            "zero-copy": results["intervals/zero-copy"]["bytes_shipped"],
            "reduction": round(
                1
                - results["intervals/zero-copy"]["bytes_shipped"]
                / results["intervals/value"]["bytes_shipped"],
                4,
            ),
        },
        "outputs_bit_identical": identical,
    }


def check_regression(measured: dict, baseline: dict) -> list[str]:
    failures = []
    if not measured["outputs_bit_identical"]:
        failures.append("kernel outputs are no longer bit-identical")
    for name in ("intervals/value", "intervals/zero-copy"):
        base_speedup = baseline["kernels"][name]["speedup"]
        got = measured["kernels"][name]["speedup"]
        floor = base_speedup * (1 - REGRESSION_MARGIN)
        if got < floor:
            failures.append(
                f"{name}: speedup {got:.2f}x < {floor:.2f}x "
                f"(baseline {base_speedup:.2f}x - {REGRESSION_MARGIN:.0%})"
            )
    gate = measured["backend_gate"]
    if gate["compiled_impl"] is None:
        print(
            "note: no compiled implementation available; "
            "masked-backend gate skipped (pure-fallback leg)"
        )
    else:
        floor = MASKED_MIN_RATIO * (1 - REGRESSION_MARGIN)
        if gate["ratio"] is None or gate["ratio"] < floor:
            failures.append(
                f"masked backend combined colloc+adjacency ratio "
                f"{gate['ratio']}x < {floor:.2f}x (required "
                f"{MASKED_MIN_RATIO:.1f}x - {REGRESSION_MARGIN:.0%} noise "
                f"margin, same-run scipy/masked)"
            )
    base_red = baseline["dispatch_bytes"]["reduction"]
    got_red = measured["dispatch_bytes"]["reduction"]
    if got_red < base_red * (1 - REGRESSION_MARGIN):
        failures.append(
            f"zero-copy byte reduction {got_red:.2%} regressed vs "
            f"baseline {base_red:.2%}"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--update", action="store_true",
        help=f"rewrite the committed baseline {BASELINE_PATH.name}",
    )
    mode.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) if the interval kernel regressed >20%% "
        "against the committed baseline or the masked backend misses "
        "its same-run ratio gate",
    )
    args = parser.parse_args(argv)

    measured = run_bench()
    print(json.dumps(measured, indent=2))

    if args.update:
        BASELINE_PATH.write_text(json.dumps(measured, indent=2) + "\n")
        print(f"\nbaseline written to {BASELINE_PATH}")
        return 0
    if args.check:
        if not BASELINE_PATH.exists():
            print(f"\nno committed baseline at {BASELINE_PATH}", file=sys.stderr)
            return 1
        baseline = json.loads(BASELINE_PATH.read_text())
        failures = check_regression(measured, baseline)
        if failures:
            print("\nREGRESSION:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print("\nno regression vs committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
