"""BENCH-KERNELS — interval kernel vs dense-hours, value vs zero-copy.

Reproduces the ``bench_txt_fourweek`` configuration (8 ranks, 4 simulated
weeks, bench-scale population, batches of 2) and synthesizes the **full
4-week window** under three pipeline configurations:

* ``dense-hours`` kernel, by-value dispatch — the seed baseline;
* ``intervals`` kernel, by-value dispatch;
* ``intervals`` kernel, zero-copy dispatch (byte-range descriptors).

Emits ``BENCH_synthesis.json`` (records/s, per-stage timings, speedups,
root→worker bytes shipped) and — with ``--check`` — fails if the interval
kernel's measured speedup over the in-run dense baseline regresses more
than 20% against the committed baseline.  The gate compares *speedup
ratios*, not absolute throughput: both kernels run on the same machine in
the same process, so the ratio is stable across hardware while absolute
records/s are not.

Usage::

    PYTHONPATH=src python benchmarks/bench_synthesis_kernels.py            # print
    PYTHONPATH=src python benchmarks/bench_synthesis_kernels.py --update  # rewrite baseline
    PYTHONPATH=src python benchmarks/bench_synthesis_kernels.py --check   # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

import repro
from repro.distrib import DistributedSimulation, SerialPool, spatial_partition
from repro.evlog import LogSet
from repro.sim import Simulation  # noqa: F401  (parity with sibling benches)

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_synthesis.json"

BENCH_PERSONS = 6_000
SEED = 2017
N_RANKS = 8
WEEKS = 4
BATCH_SIZE = 2
REGRESSION_MARGIN = 0.20  # fail --check below 80% of baseline speedup
REPEATS = 3  # best-of, to shed cold-cache noise

CONFIGS = [
    ("dense-hours", "value"),
    ("intervals", "value"),
    ("intervals", "zero-copy"),
]


def generate_logs(log_dir: Path):
    pop = repro.generate_population(
        repro.ScaleConfig(n_persons=BENCH_PERSONS, seed=SEED)
    )
    cfg = repro.SimulationConfig(
        scale=pop.scale,
        duration_hours=WEEKS * repro.HOURS_PER_WEEK,
        n_ranks=N_RANKS,
    )
    part = spatial_partition(
        pop.places.coords(), pop.places.capacity.astype(float), N_RANKS
    )
    DistributedSimulation(pop, cfg, part).run(log_dir=log_dir)
    return pop, LogSet(log_dir)


def time_config(logs, n_persons, t0, t1, kernel, dispatch):
    best = None
    for _ in range(REPEATS):
        pool = SerialPool()
        pool.track_bytes = True
        try:
            tic = time.perf_counter()
            net, report = repro.synthesize_from_logs(
                logs, n_persons, t0, t1,
                batch_size=BATCH_SIZE, pool=pool,
                kernel=kernel, dispatch=dispatch,
            )
            elapsed = time.perf_counter() - tic
        finally:
            pool.close()
        if best is None or elapsed < best["seconds"]:
            best = {
                "seconds": elapsed,
                "records_per_s": report.n_records / elapsed,
                "stages": {
                    k: round(v, 4) for k, v in report.timings.stages.items()
                },
                "bytes_shipped": pool.bytes_shipped,
                "n_records": report.n_records,
                "network": net,
            }
    return best


def run_bench() -> dict:
    with tempfile.TemporaryDirectory(prefix="bench_kernels_") as tmp:
        log_dir = Path(tmp)
        pop, logs = generate_logs(log_dir)
        t0, t1 = 0, WEEKS * repro.HOURS_PER_WEEK

        results = {}
        for kernel, dispatch in CONFIGS:
            results[f"{kernel}/{dispatch}"] = time_config(
                logs, pop.n_persons, t0, t1, kernel, dispatch
            )

    base = results["dense-hours/value"]
    nets = [r.pop("network") for r in results.values()]
    identical = all(
        (nets[0].adjacency != n.adjacency).nnz == 0 for n in nets[1:]
    )
    for name, r in results.items():
        r["speedup"] = round(base["seconds"] / r["seconds"], 3)
        r["seconds"] = round(r["seconds"], 4)
        r["records_per_s"] = round(r["records_per_s"], 1)

    return {
        "bench": "synthesis_kernels",
        "config": {
            "persons": BENCH_PERSONS,
            "seed": SEED,
            "ranks": N_RANKS,
            "weeks": WEEKS,
            "window": [0, WEEKS * repro.HOURS_PER_WEEK],
            "batch_size": BATCH_SIZE,
            "records": base["n_records"],
        },
        "kernels": results,
        "dispatch_bytes": {
            "value": results["intervals/value"]["bytes_shipped"],
            "zero-copy": results["intervals/zero-copy"]["bytes_shipped"],
            "reduction": round(
                1
                - results["intervals/zero-copy"]["bytes_shipped"]
                / results["intervals/value"]["bytes_shipped"],
                4,
            ),
        },
        "outputs_bit_identical": identical,
    }


def check_regression(measured: dict, baseline: dict) -> list[str]:
    failures = []
    if not measured["outputs_bit_identical"]:
        failures.append("kernel outputs are no longer bit-identical")
    for name in ("intervals/value", "intervals/zero-copy"):
        base_speedup = baseline["kernels"][name]["speedup"]
        got = measured["kernels"][name]["speedup"]
        floor = base_speedup * (1 - REGRESSION_MARGIN)
        if got < floor:
            failures.append(
                f"{name}: speedup {got:.2f}x < {floor:.2f}x "
                f"(baseline {base_speedup:.2f}x - {REGRESSION_MARGIN:.0%})"
            )
    base_red = baseline["dispatch_bytes"]["reduction"]
    got_red = measured["dispatch_bytes"]["reduction"]
    if got_red < base_red * (1 - REGRESSION_MARGIN):
        failures.append(
            f"zero-copy byte reduction {got_red:.2%} regressed vs "
            f"baseline {base_red:.2%}"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--update", action="store_true",
        help=f"rewrite the committed baseline {BASELINE_PATH.name}",
    )
    mode.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) if the interval kernel regressed >20%% "
        "against the committed baseline",
    )
    args = parser.parse_args(argv)

    measured = run_bench()
    print(json.dumps(measured, indent=2))

    if args.update:
        BASELINE_PATH.write_text(json.dumps(measured, indent=2) + "\n")
        print(f"\nbaseline written to {BASELINE_PATH}")
        return 0
    if args.check:
        if not BASELINE_PATH.exists():
            print(f"\nno committed baseline at {BASELINE_PATH}", file=sys.stderr)
            return 1
        baseline = json.loads(BASELINE_PATH.read_text())
        failures = check_regression(measured, baseline)
        if failures:
            print("\nREGRESSION:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print("\nno regression vs committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
