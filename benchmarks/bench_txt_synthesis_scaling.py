"""TXT-SYNTH — synthesis pipeline scaling with workers.

Paper Sections IV-V: the R/SNOW/Rmpi pipeline distributes per-place
collocation work and nnz-balanced adjacency work across workers; batches
of log files are processed independently ("each batch of 16 can be run as
separate batch jobs").  Here we measure:

* end-to-end synthesis wall time at 1 and 2 workers (thread and process
  backends) — who wins and by how much on this machine;
* that parallel output is bit-identical to serial (determinism);
* stage timing breakdown, mirroring the paper's 30-min-per-batch anatomy.
"""

from __future__ import annotations

import time

import repro
from repro.distrib import ThreadPool, make_pool

from conftest import write_report


def test_txt_synthesis_worker_scaling(benchmark, bench_pop, bench_week, tmp_path):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    records = bench_week.records
    n = bench_pop.n_persons
    t1 = repro.HOURS_PER_WEEK

    results = {}
    serial_net, serial_report = None, None
    for kind, workers in (("serial", 1), ("thread", 2), ("process", 2)):
        pool = None if kind == "serial" else make_pool(kind, workers)
        t0 = time.perf_counter()
        net, report = repro.synthesize_network(records, n, 0, t1, pool=pool)
        elapsed = time.perf_counter() - t0
        if pool is not None:
            pool.close()
        results[kind] = elapsed
        if kind == "serial":
            serial_net, serial_report = net, report
        else:
            assert (net.adjacency != serial_net.adjacency).nnz == 0

    lines = [
        "TXT-SYNTH: synthesis wall time by worker backend",
        f"  records={len(records):,}  places={serial_report.n_places:,}",
        *(
            f"  {kind:>8}: {secs:.3f} s  (speedup vs serial: "
            f"{results['serial'] / secs:.2f}x)"
            for kind, secs in results.items()
        ),
        "  --- serial stage breakdown ---",
        *("  " + ln for ln in serial_report.timings.report().splitlines()),
        "  paper: ~30 min per 16-file batch on 64 processes; batches",
        "  independent, so jobs run concurrently on the cluster queue.",
    ]
    write_report("txt_synthesis_scaling", "\n".join(lines))

    # parallel must not be catastrophically slower than serial (2-CPU box;
    # thread backend shares the GIL for the non-numpy parts, so the paper's
    # cluster-scale speedups do not appear here — the *shape* claim is that
    # the pipeline parallelizes without changing its output)
    assert results["thread"] < results["serial"] * 5.0


def test_txt_synthesis_batches_sum_like_one_job(benchmark, bench_pop, bench_week, tmp_path):
    """Batch independence: synthesizing per-rank file batches and summing
    equals one whole-log synthesis (paper's multi-job design)."""
    import numpy as np

    from repro.distrib import spatial_partition

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    cfg = repro.SimulationConfig(
        scale=bench_pop.scale, duration_hours=repro.HOURS_PER_WEEK, n_ranks=8
    )
    part = spatial_partition(
        bench_pop.places.coords(), bench_pop.places.capacity.astype(float), 8
    )
    repro.DistributedSimulation(bench_pop, cfg, part).run(log_dir=tmp_path)
    whole, _ = repro.synthesize_network(
        bench_week.records, bench_pop.n_persons, 0, repro.HOURS_PER_WEEK
    )
    batched, report = repro.synthesize_from_logs(
        tmp_path, bench_pop.n_persons, 0, repro.HOURS_PER_WEEK, batch_size=2
    )
    assert report.batches == 4
    assert (whole.adjacency != batched.adjacency).nnz == 0


def test_txt_synthesis_throughput(benchmark, bench_pop, bench_week):
    """The headline pipeline benchmark: records → network, serial."""
    net, _ = benchmark.pedantic(
        repro.synthesize_network,
        args=(bench_week.records, bench_pop.n_persons, 0, repro.HOURS_PER_WEEK),
        rounds=3,
        iterations=1,
    )
    assert net.n_edges > 0


def test_txt_synthesis_threaded_throughput(benchmark, bench_pop, bench_week):
    with ThreadPool(2) as pool:
        net, _ = benchmark.pedantic(
            repro.synthesize_network,
            args=(
                bench_week.records,
                bench_pop.n_persons,
                0,
                repro.HOURS_PER_WEEK,
            ),
            kwargs={"pool": pool},
            rounds=3,
            iterations=1,
        )
    assert net.n_edges > 0
