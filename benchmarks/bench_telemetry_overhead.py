"""BENCH-TELEMETRY — cost of the always-on telemetry layer.

Times the same synthesis workload twice in one process — once with
telemetry recording enabled (spans, registry metrics, probe events) and
once with it switched off via :func:`repro.obs.configure` — and gates
the instrumented-vs-bare overhead at under ``OVERHEAD_LIMIT``.

The two modes interleave *call by call* so frequency scaling, cache
warmth, and background load hit both equally, and each mode's figure is
a low quantile of its per-call times (near-minimum wall time is the
standard low-noise estimator for CPU-bound work; a low quantile beats
the raw minimum because one lucky scheduler slot can't move it, and
coarser block-alternating schedules showed ±4% run-to-run noise,
swamping the real ~0.2% cost).
The gate is absolute — measured fresh on the runner, not relative to
the committed baseline — because the claim being enforced is "telemetry
costs < 3%", which must hold on any hardware.
``BENCH_telemetry.json`` records reference numbers for context.

Usage::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py           # print
    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py --update  # rewrite baseline
    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py --check   # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import repro
from repro.distrib import DistributedSimulation, spatial_partition
from repro.obs import configure, get_collector

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_telemetry.json"

BENCH_PERSONS = 2_000
SEED = 2017
N_RANKS = 2
WEEKS = 1
REPS = 150  # timed synthesize calls per mode, interleaved call by call
ESTIMATOR_QUANTILE = 0.1  # compare 10th-percentile times, not raw minima
OVERHEAD_LIMIT = 0.03  # fail --check at >= 3% instrumented-vs-bare


def generate_logs(log_dir: Path):
    pop = repro.generate_population(
        repro.ScaleConfig(n_persons=BENCH_PERSONS, seed=SEED)
    )
    cfg = repro.SimulationConfig(
        scale=pop.scale,
        duration_hours=WEEKS * repro.HOURS_PER_WEEK,
        n_ranks=N_RANKS,
    )
    part = spatial_partition(
        pop.places.coords(), pop.places.capacity.astype(float), N_RANKS
    )
    DistributedSimulation(pop, cfg, part).run(log_dir=log_dir)
    return pop


def one_call(log_dir: Path, n_persons: int) -> float:
    """Wall seconds for one full-week synthesis call."""
    tic = time.perf_counter()
    repro.synthesize_from_logs(
        log_dir, n_persons, 0, WEEKS * repro.HOURS_PER_WEEK,
        kernel="intervals",
    )
    return time.perf_counter() - tic


def run_bench() -> dict:
    reps_on: list[float] = []
    reps_off: list[float] = []
    prev = configure(True)
    try:
        with tempfile.TemporaryDirectory(prefix="bench_telemetry_") as tmp:
            log_dir = Path(tmp)
            pop = generate_logs(log_dir)

            # warm both paths (imports, file cache, allocator) untimed
            for on in (True, False):
                configure(on)
                one_call(log_dir, pop.n_persons)

            for rep in range(REPS):
                # alternate which mode goes first within each pair so
                # neither systematically benefits from the warmer cache
                order = (True, False) if rep % 2 == 0 else (False, True)
                for on in order:
                    configure(on)
                    secs = one_call(log_dir, pop.n_persons)
                    (reps_on if on else reps_off).append(secs)
                get_collector().drain()  # don't let spans accumulate
    finally:
        configure(prev)

    # the k-th smallest time is a steadier floor estimate than the raw
    # minimum (one lucky scheduler slot can't move it)
    k = int(len(reps_on) * ESTIMATOR_QUANTILE)
    best_on = sorted(reps_on)[k]
    best_off = sorted(reps_off)[k]
    overhead = (best_on - best_off) / best_off
    return {
        "bench": "telemetry_overhead",
        "config": {
            "persons": BENCH_PERSONS,
            "seed": SEED,
            "ranks": N_RANKS,
            "weeks": WEEKS,
            "reps_per_mode": REPS,
            "estimator_quantile": ESTIMATOR_QUANTILE,
        },
        "seconds_instrumented": round(best_on, 6),
        "seconds_bare": round(best_off, 6),
        "min_instrumented": round(min(reps_on), 6),
        "min_bare": round(min(reps_off), 6),
        "median_instrumented": round(sorted(reps_on)[len(reps_on) // 2], 6),
        "median_bare": round(sorted(reps_off)[len(reps_off) // 2], 6),
        "overhead": round(overhead, 4),
        "overhead_pct": round(100 * overhead, 2),
        "limit_pct": round(100 * OVERHEAD_LIMIT, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--update", action="store_true",
        help=f"rewrite the committed baseline {BASELINE_PATH.name}",
    )
    mode.add_argument(
        "--check", action="store_true",
        help=f"fail (exit 1) if telemetry costs >= {100 * OVERHEAD_LIMIT:.0f}%% "
        "over the uninstrumented run",
    )
    args = parser.parse_args(argv)

    measured = run_bench()
    print(json.dumps(measured, indent=2))

    if args.update:
        if measured["overhead"] >= OVERHEAD_LIMIT:
            print(
                f"\nrefusing baseline: overhead "
                f"{measured['overhead_pct']:.2f}% >= {100 * OVERHEAD_LIMIT:.0f}%",
                file=sys.stderr,
            )
            return 1
        BASELINE_PATH.write_text(json.dumps(measured, indent=2) + "\n")
        print(f"\nbaseline written to {BASELINE_PATH}")
        return 0
    if args.check:
        if measured["overhead"] >= OVERHEAD_LIMIT:
            print(
                f"\nREGRESSION: telemetry overhead "
                f"{measured['overhead_pct']:.2f}% >= "
                f"{100 * OVERHEAD_LIMIT:.0f}% limit "
                f"(instrumented {measured['seconds_instrumented']}s vs "
                f"bare {measured['seconds_bare']}s)",
                file=sys.stderr,
            )
            return 1
        print(
            f"\ntelemetry overhead {measured['overhead_pct']:.2f}% "
            f"< {100 * OVERHEAD_LIMIT:.0f}% limit"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
