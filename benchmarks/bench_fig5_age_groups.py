"""FIG5 — within-age-group vertex degree distributions.

Paper Figure 5: the population split into age groups {0-14, 15-18, 19-44,
45-64, 65+}, keeping only edges inside each group.  Claims reproduced:

* the 0-14 group deviates most from power-law scaling — its distribution
  is nearly flat over a wide degree range, attributed to school/class-size
  caps on children's contacts;
* the 15-18 group also flattens (school);
* adult groups show more heterogeneous (more power-law-like) shapes.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import age_group_degree_distributions, fit_power_law
from repro.config import age_group_labels

from conftest import write_report


def test_fig5_age_group_distributions(benchmark, bench_net, bench_pop):
    dists = benchmark.pedantic(
        age_group_degree_distributions,
        args=(bench_net, bench_pop.persons),
        rounds=2,
        iterations=1,
    )

    lines = [
        "FIG5: within-group degree distributions by age group",
        f"  {'group':>6} {'members':>8} {'mean_k':>7} {'max_k':>6} "
        f"{'head_flatness':>14} {'PL_rms':>7}",
    ]
    stats = {}
    for label in age_group_labels():
        d = dists[label]
        try:
            rms = fit_power_law(d).rms_log_error
        except Exception:
            rms = float("nan")
        # flatness over the low-degree band common to school groups
        k_hi = max(3, min(20, int(d.max_degree * 0.4))) if d.max_degree else 3
        flat = d.flatness(1, k_hi)
        stats[label] = {"d": d, "rms": rms, "flat": flat, "k_hi": k_hi}
        lines.append(
            f"  {label:>6} {d.n_vertices:>8,} {d.mean_degree:>7.1f} "
            f"{d.max_degree:>6} {flat:>14.2f} {rms:>7.3f}"
        )
    lines += [
        "  paper: 0-14 flattest (school caps), 15-18 also flattens,",
        "  19-44/65+ show outlier clumps (large institutions).",
    ]
    write_report("fig5_age_groups", "\n".join(lines))

    kids = dists["0-14"]
    adults = dists["19-44"]
    # children's within-group network exists and is school-shaped: a hard
    # ceiling far below the adult maximum is the classroom-cap signature
    assert kids.mean_degree > 3
    assert kids.max_degree < bench_net.degrees().max()
    # all groups present with the full population covered
    assert sum(d.n_vertices for d in dists.values()) == bench_pop.n_persons
    # adults have the heavier tail: their max within-group degree exceeds
    # the children's (workplaces/venues are uncapped; classrooms are not)
    assert adults.max_degree >= kids.max_degree
