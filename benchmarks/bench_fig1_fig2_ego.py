"""FIG1/FIG2 — radius-2 ego networks of randomly sampled individuals.

Paper Figures 1 and 2: two random persons' two-degree neighborhoods,
one dense (2,529 nodes / 391,104 edges), one diffuse (1,097 nodes /
41,372 edges) — a wide spread of local density.  At bench scale we sample
several egos and assert the same qualitative spread, then benchmark the
extraction and a ForceAtlas2 layout (the paper's Gephi step).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ego_network, sample_ego_networks
from repro.viz import forceatlas2_layout

from conftest import write_report


def test_fig1_fig2_ego_extraction(benchmark, bench_net):
    rng = np.random.default_rng(42)
    egos = sample_ego_networks(bench_net, n_samples=8, rng=rng, radius=2)

    center = egos[0].center
    benchmark.pedantic(
        ego_network, args=(bench_net, center, 2), rounds=3, iterations=1
    )

    egos.sort(key=lambda e: e.density())
    diffuse, dense = egos[0], egos[-1]
    lines = [
        "FIG1/FIG2: radius-2 ego networks of random persons",
        "  paper fig1 (dense):   2,529 nodes   391,104 edges",
        "  paper fig2 (diffuse): 1,097 nodes    41,372 edges",
        "  --- sampled here ---",
    ]
    for e in egos:
        lines.append(
            f"  center={e.center:>6}  nodes={e.n_nodes:>6,}  "
            f"edges={e.n_edges:>9,}  density={e.density():.4f}"
        )
    lines.append(
        f"  spread: densest/diffusest density ratio = "
        f"{dense.density() / diffuse.density():.2f}"
    )
    write_report("fig1_fig2_ego", "\n".join(lines))

    # every ego is a strict sub-network of the whole graph
    for e in egos:
        assert 1 <= e.n_nodes <= bench_net.n_persons
        assert e.n_edges <= bench_net.n_edges
    # the paper's two examples differ ~3x in node count and ~9x in edges;
    # we assert a meaningful density spread exists in ours too
    assert dense.density() > 1.5 * diffuse.density()
    # dense ego: edges far exceed nodes (fig1's 391k/2.5k ≈ 155)
    assert dense.n_edges > 5 * dense.n_nodes


def test_fig1_layout_forceatlas2(benchmark, bench_net):
    """Benchmark the Gephi/ForceAtlas2 spatialization on a real ego."""
    rng = np.random.default_rng(7)
    degrees = bench_net.degrees()
    # a mid-degree person: keeps the ego around 10^2-10^3 nodes
    candidates = np.flatnonzero(
        (degrees > np.percentile(degrees, 40))
        & (degrees < np.percentile(degrees, 60))
    )
    ego = ego_network(bench_net, int(rng.choice(candidates)), radius=1)

    pos = benchmark.pedantic(
        forceatlas2_layout,
        args=(ego.matrix,),
        kwargs={"iterations": 50},
        rounds=2,
        iterations=1,
    )
    assert pos.shape == (ego.n_nodes, 2)
    assert np.isfinite(pos).all()
