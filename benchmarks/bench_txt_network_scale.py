"""TXT-NET — network scale statistics vs population size.

Paper Section V: the full-week network has 2,927,761 vertices,
830,328,649 edges (≈284 edges/person) and needs ~10 GB in R.  We measure
vertex/edge counts, memory, and edges-per-person at increasing bench
populations and check the growth trend that makes the paper's edge count
plausible: edges-per-person grows (superlinear edge growth) as venue/
workplace hubs accumulate cross-household pairs.
"""

from __future__ import annotations

import repro
from repro._util import human_bytes
from repro.analysis import summarize
from repro.sim import Simulation

from conftest import write_report

SCALES = (1_500, 3_000, 6_000)


def one_week_network(n_persons):
    pop = repro.generate_population(
        repro.ScaleConfig(n_persons=n_persons, seed=2017)
    )
    cfg = repro.SimulationConfig(
        scale=pop.scale, duration_hours=repro.HOURS_PER_WEEK
    )
    res = Simulation(pop, cfg).run_fast()
    net, _ = repro.synthesize_network(
        res.records, n_persons, 0, repro.HOURS_PER_WEEK
    )
    return net


def test_txt_network_scale_sweep(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    stats = {}
    for n in SCALES:
        net = one_week_network(n)
        s = summarize(net)
        stats[n] = s
        rows.append(
            f"  {n:>8,} {s.n_edges:>12,} {s.edges_per_person:>10.1f} "
            f"{human_bytes(s.memory_bytes):>12} {s.giant_component_fraction:>8.1%}"
        )
    lines = [
        "TXT-NET: one-week network scale vs population",
        f"  {'persons':>8} {'edges':>12} {'edges/pers':>10} "
        f"{'memory':>12} {'giant':>8}",
        *rows,
        "  paper @2.9 M: 830,328,649 edges (283.6/person), ~10 GB in R.",
        "  memory/edge here: "
        + f"{stats[SCALES[-1]].memory_bytes / stats[SCALES[-1]].n_edges:.1f} B "
        + "(paper: ~12.9 B/edge -> 10 GB)",
    ]
    write_report("txt_network_scale", "\n".join(lines))

    # with fixed place-per-person ratios the per-person edge count is
    # approximately scale-invariant (linear total growth)
    eps = [stats[n].edges_per_person for n in SCALES]
    assert max(eps) < 1.5 * min(eps)
    assert stats[SCALES[2]].n_edges > 3 * stats[SCALES[0]].n_edges
    # sparse triangular storage: tens of bytes per edge, like the paper's
    # 10 GB / 830 M edges ≈ 13 B
    mem_per_edge = stats[SCALES[-1]].memory_bytes / stats[SCALES[-1]].n_edges
    assert 4 <= mem_per_edge <= 40
    # one urban giant component
    assert stats[SCALES[-1]].giant_component_fraction > 0.95


def test_txt_network_end_to_end_time(benchmark):
    """population → week of events → network, at the smallest scale."""
    net = benchmark.pedantic(
        one_week_network, args=(SCALES[0],), rounds=2, iterations=1
    )
    assert net.n_edges > 0
