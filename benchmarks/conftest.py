"""Shared benchmark fixtures.

One moderately sized world (the "bench world") is simulated once per
session and reused by every benchmark; per-benchmark parameter sweeps
rescale from it.  Reports comparing against the paper's numbers are
appended to ``benchmarks/reports/`` so a bench run leaves an auditable
record (EXPERIMENTS.md quotes them).
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.sim import Simulation

BENCH_PERSONS = 6_000
REPORT_DIR = Path(__file__).parent / "reports"


def write_report(name: str, text: str) -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def bench_pop():
    return repro.generate_population(
        repro.ScaleConfig(n_persons=BENCH_PERSONS, seed=2017)
    )


@pytest.fixture(scope="session")
def bench_week(bench_pop):
    cfg = repro.SimulationConfig(
        scale=bench_pop.scale, duration_hours=repro.HOURS_PER_WEEK
    )
    return Simulation(bench_pop, cfg).run_fast()


@pytest.fixture(scope="session")
def bench_net(bench_pop, bench_week):
    net, _ = repro.synthesize_network(
        bench_week.records, bench_pop.n_persons, 0, repro.HOURS_PER_WEEK
    )
    return net
