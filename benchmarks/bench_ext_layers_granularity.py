"""EXT-LAYERS / EXT-GRAN — location-type layers and time granularity.

Two direct quotes drive this bench:

* conclusion: synthetic networks must "also match the vertex degree
  distributions for population sub-groups such as age or **location type,
  e.g., work or school**" — so we decompose the network into place-kind
  layers and record each layer's degree profile;
* Section II: the event log "contains the complete information required
  to create a person collocation network with **arbitrary time
  granularity, e.g., hourly, daily, weekly or monthly aggregates**" — so
  we synthesize daily networks and compare weekday vs weekend structure.
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis import degree_distribution
from repro.core import StreamingSynthesizer, synthesize_layers
from repro.evlog.multifile import write_rank_logs

from conftest import write_report


def test_ext_layers_degree_profiles(benchmark, bench_pop, bench_week, bench_net):
    layers = benchmark.pedantic(
        synthesize_layers,
        args=(
            bench_week.records,
            bench_pop.places,
            bench_pop.n_persons,
            0,
            repro.HOURS_PER_WEEK,
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    stats = {}
    for name, net in layers.items():
        d = degree_distribution(net.degrees())
        mean_w = net.total_weight / net.n_edges if net.n_edges else 0.0
        stats[name] = {"net": net, "dist": d, "mean_w": mean_w}
        rows.append(
            f"  {name:>10}: edges={net.n_edges:>8,}  mean_k={d.mean_degree:>6.1f}"
            f"  max_k={d.max_degree:>4}  hours/pair={mean_w:>6.1f}"
        )
    lines = [
        "EXT-LAYERS: the network by location type (conclusion's sub-groups)",
        *rows,
        "  home = long-hour cliques; school = capped classrooms;",
        "  other = many brief weak ties.  Layers sum exactly to the full net.",
    ]
    write_report("ext_layers", "\n".join(lines))

    # exact decomposition
    total = None
    for net in layers.values():
        total = net if total is None else total + net
    assert (total.adjacency != bench_net.adjacency).nnz == 0
    # structure: home pairs share the most hours; venues the fewest
    assert stats["home"]["mean_w"] > stats["other"]["mean_w"] * 10
    # classroom cap: school layer max degree far below the full network's
    assert stats["school"]["dist"].max_degree < bench_net.degrees().max()
    # weak-tie layer has the most distinct pairs
    assert stats["other"]["net"].n_edges == max(
        s["net"].n_edges for s in stats.values()
    )


def test_ext_granularity_daily_networks(benchmark, bench_pop, bench_week, tmp_path):
    """Daily aggregates of the same log; weekday vs weekend structure."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_rank_logs(tmp_path, [bench_week.records])
    series = StreamingSynthesizer(
        bench_pop.n_persons, interval_hours=24, batch_size=4
    ).process(str(tmp_path), 7)

    edges = series.interval_edge_counts()
    weekday_mean = float(edges[:5].mean())
    weekend_mean = float(edges[5:].mean())
    persistence = series.edge_persistence()

    lines = [
        "EXT-GRAN: daily networks from one week of logs (Section II's",
        "  'arbitrary time granularity')",
        f"  edges per day        : {edges.tolist()}",
        f"  weekday mean         : {weekday_mean:,.0f}",
        f"  weekend mean         : {weekend_mean:,.0f}",
        f"  day-over-day persistence: "
        + ", ".join(f"{p:.2f}" for p in persistence),
        "  anchored weekday routine (school/work) vs diffuse weekends.",
    ]
    write_report("ext_granularity", "\n".join(lines))

    # the weekly total equals the sum of the dailies
    total = series.total()
    whole, _ = repro.synthesize_network(
        bench_week.records, bench_pop.n_persons, 0, repro.HOURS_PER_WEEK
    )
    assert (total.adjacency != whole.adjacency).nnz == 0
    # weekday structure differs from weekend structure
    assert weekday_mean != weekend_mean
    # Mon-Tue persistence (routine) exceeds Fri-Sat (routine breaks)
    assert persistence[0] > persistence[4]
