"""FIG3 — whole-population vertex degree distribution and fits.

Paper Figure 3: log-log degree distribution of the full Chicago week.
Shape claims reproduced here:

* a flat head — degrees 1..7 each hold a comparable share of persons,
  followed by a steep drop at high degree;
* the distribution is NOT a pure power law over multiple decades;
* a truncated power law fits the tail better than the pure power law;
* an exponential also captures the roll-off but misses the full shape.

The benchmark measures the analysis cost (degree vector + all three fits).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import compare_fits, degree_distribution
from repro.viz import ascii_loglog

from conftest import write_report


def run_fig3(net):
    dist = degree_distribution(net.degrees())
    fits = compare_fits(dist)
    return dist, fits


def test_fig3_degree_distribution(benchmark, bench_net):
    dist, fits = benchmark.pedantic(
        run_fig3, args=(bench_net,), rounds=3, iterations=1
    )

    head = dist.head_count(7)
    tail_cut = int(dist.max_degree * 0.5)
    tail_mass = dist.counts[dist.degrees >= tail_cut].sum()

    pl = fits["power_law"]
    tpl = fits["truncated_power_law"]
    ex = fits["exponential"]

    lines = [
        "FIG3: vertex degree distribution (one simulated week)",
        f"  persons                 : {dist.n_vertices:,}",
        f"  connected               : {dist.n_vertices - dist.n_isolated:,}",
        f"  mean degree             : {dist.mean_degree:.1f}",
        f"  max degree              : {dist.max_degree}",
        f"  head counts (deg 1..7)  : {head.tolist()}",
        f"  head flatness (max/min) : {dist.flatness(1, 7):.2f}",
        f"  tail mass (k >= {tail_cut:4d})   : {tail_mass}",
        "  --- fits (rms error in log10 space; paper overlays) ---",
        f"  power law        a={pl.params['a']:.3f}  rms={pl.rms_log_error:.3f}  tail={pl.tail_error(dist):.3f}",
        f"  truncated PL     a={tpl.params['a']:.3f} kc={tpl.params['kc']:.1f}  rms={tpl.rms_log_error:.3f}  tail={tpl.tail_error(dist):.3f}",
        f"  exponential      kc={ex.params['kc']:.1f}  rms={ex.rms_log_error:.3f}  tail={ex.tail_error(dist):.3f}",
        "  paper: a=1.5 PL reference; truncated PL a=1.25, kc=1e3 fits tail",
        "         better; neither captures the full shape.",
        "",
        ascii_loglog(
            dist.degrees,
            dist.counts,
            title="  degree counts (o) / truncated-PL fit (+)",
            overlays=[(
                dist.degrees.astype(float),
                tpl.predict(dist.degrees.astype(float)) * dist.counts.sum(),
                "+",
            )],
        ),
    ]
    write_report("fig3_degree_dist", "\n".join(lines))

    # --- shape assertions (the paper's qualitative claims) ---
    # head populated: every degree 1..7 occurs
    assert (head > 0).all()
    # steep drop: per-degree counts in the top half of the degree range are
    # at least 10x below the head's per-degree counts
    tail_counts = dist.counts[dist.degrees >= tail_cut]
    assert tail_counts.mean() < head.mean() / 10
    # not a clean power law over the whole support
    assert pl.rms_log_error > 0.15
    # truncated PL beats pure PL overall and neither is a perfect fit
    assert tpl.log_rss < pl.log_rss
    # exponential captures the roll-off better than pure PL on the tail
    assert ex.tail_error(dist) < pl.tail_error(dist)


def test_fig3_log_binned_tail(benchmark, bench_net):
    """Log-binned variant used for plotting the heavy tail smoothly."""
    from repro.analysis import log_binned

    dist = degree_distribution(bench_net.degrees())
    centers, density = benchmark(log_binned, dist)
    assert len(centers) >= 5
    # binned density decreases from head to tail overall
    assert density[0] > density[-1]
