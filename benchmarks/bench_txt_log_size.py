"""TXT-LOG / ABL-FMT — event-log sizing and format ablation.

Paper Section III sizing claims:

* each entry is 20 bytes (five uint32 fields);
* ~5 activity changes/person/day → ≈2 GB/week at 2.9 M persons;
* event-based binary logs are much smaller than string logs;
* per-rank files shrink proportionally to the rank count (30 MB/week/rank
  at 64 ranks).

This bench measures write throughput of the EVL writer vs the text
strawman, validates the byte arithmetic at bench scale, and projects to
the paper's scale from the measured events/person/day.
"""

from __future__ import annotations

import numpy as np

import repro
from repro._util import human_bytes
from repro.evlog import CachedLogWriter, LogSet, TextLogWriter, write_rank_logs
from repro.evlog.schema import RECORD_BYTES
from repro.evlog.textlog import text_log_size
from repro.synthpop.schedule import ACTIVITY_NAMES

from conftest import BENCH_PERSONS, write_report

NAMES = {int(k): v for k, v in ACTIVITY_NAMES.items()}


def test_txt_log_event_volume_and_projection(benchmark, bench_pop, bench_week, tmp_path):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    records = bench_week.records
    rate = bench_week.events_per_person_day(bench_pop.n_persons)
    week_bytes = len(records) * RECORD_BYTES

    # paper-scale projection from measured rate
    paper_week = 2_900_000 * rate * 7 * RECORD_BYTES
    paper_year = paper_week * 52

    # per-rank sizes at the paper's 64-rank example
    per_rank_week = paper_week / 64

    text_bytes = text_log_size(records, NAMES)

    lines = [
        "TXT-LOG: event-log sizing",
        f"  bench persons            : {BENCH_PERSONS:,}",
        f"  events/person/day        : {rate:.2f}   (paper sizing: ~5)",
        f"  record size              : {RECORD_BYTES} B (paper: 20 B)",
        f"  one week, bench scale    : {human_bytes(week_bytes)}",
        f"  text strawman, same week : {human_bytes(text_bytes)} "
        f"({text_bytes / week_bytes:.1f}x larger)",
        "  --- projection to 2.9 M persons from measured rate ---",
        f"  one week                 : {human_bytes(paper_week)} (paper: ~2 GB)",
        f"  one year                 : {human_bytes(paper_year)} "
        f"(paper: 100-200 GB combined output)",
        f"  per-rank week, 64 ranks  : {human_bytes(per_rank_week)} "
        f"(paper: ~30 MB)",
    ]
    write_report("txt_log_size", "\n".join(lines))

    assert RECORD_BYTES == 20
    assert 2.0 < rate < 7.0
    # binary beats text by a wide margin
    assert text_bytes > 3 * week_bytes
    # projection lands in the paper's order of magnitude (0.5-5 GB/week)
    assert 0.5e9 < paper_week < 5e9


def test_txt_log_per_rank_files_shrink(benchmark, bench_week, tmp_path):
    """64 files of ~1/64 size each: partitioned logging divides the IO."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for n_ranks in (4, 16):
        parts = np.array_split(bench_week.records, n_ranks)
        d = tmp_path / f"r{n_ranks}"
        write_rank_logs(d, parts)
        logs = LogSet(d)
        sizes = [p.stat().st_size for p in logs.paths]
        total = sum(sizes)
        assert len(logs) == n_ranks
        # each file is ~total/n_ranks
        assert max(sizes) < 2 * total / n_ranks


def test_txt_log_evl_write_throughput(benchmark, bench_week, tmp_path):
    records = bench_week.records

    def write(counter=[0]):
        counter[0] += 1
        path = tmp_path / f"w{counter[0]}.evl"
        with CachedLogWriter(path, cache_records=10_000) as w:
            w.log_batch(records)
        return path.stat().st_size

    size = benchmark.pedantic(write, rounds=3, iterations=1)
    assert size >= len(records) * RECORD_BYTES


def test_abl_fmt_text_write_throughput(benchmark, bench_week, tmp_path):
    """ABL-FMT: the strawman's write cost (compare with the EVL bench)."""
    records = bench_week.records[:20_000]

    def write(counter=[0]):
        counter[0] += 1
        path = tmp_path / f"t{counter[0]}.csv"
        with TextLogWriter(path, NAMES) as t:
            t.log_batch(records)
        return t.bytes_written

    nbytes = benchmark.pedantic(write, rounds=3, iterations=1)
    assert nbytes > len(records) * RECORD_BYTES


def test_abl_fmt_compression_tradeoff(benchmark, bench_week, tmp_path):
    """zlib chunks: smaller files, slower writes — quantified."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    import time

    records = bench_week.records
    results = {}
    for compress in (False, True):
        path = tmp_path / f"c{compress}.evl"
        t0 = time.perf_counter()
        with CachedLogWriter(path, cache_records=10_000, compress=compress) as w:
            w.log_batch(records)
        results[compress] = (
            path.stat().st_size,
            time.perf_counter() - t0,
        )
    raw_size, raw_time = results[False]
    z_size, z_time = results[True]
    write_report(
        "abl_fmt_compression",
        "ABL-FMT: chunk compression tradeoff\n"
        f"  raw : {human_bytes(raw_size)} in {raw_time * 1e3:.1f} ms\n"
        f"  zlib: {human_bytes(z_size)} in {z_time * 1e3:.1f} ms "
        f"({raw_size / z_size:.2f}x smaller)",
    )
    assert z_size < raw_size
