"""ABL-BAL — load-balancing ablation (paper Section IV.A.3).

"Without this balancing step, some workers would sit idle while others
would be working for extended periods of time due to the variance in the
number of collocated persons at different locations."

On real per-place collocation matrices we compare three assignments of
matrices to workers:

* **naive order**: contiguous chunks in place-id order (what you get
  without the balancing step);
* **round-robin** over the same order;
* **LPT by nnz** (the paper's balancing step).

Reported: max/mean worker load (1.0 = perfect) and the simulated makespan
ratio, plus a benchmark of the balancing step itself.
"""

from __future__ import annotations

import numpy as np

import repro
from repro.core.balance import BalanceReport, balance_by_nnz, lpt_partition
from repro.core.colloc import build_collocation_matrices
from repro.core.slicing import slice_records

from conftest import write_report

N_WORKERS = 8


def loads_for(buckets, weights):
    return np.array(
        [sum(weights[i] for i in bucket) for bucket in buckets], dtype=np.int64
    )


def test_abl_balance_strategies(benchmark, bench_pop, bench_week):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sliced = slice_records(bench_week.records, 0, repro.HOURS_PER_WEEK)
    matrices = build_collocation_matrices(sliced, 0, repro.HOURS_PER_WEEK)
    weights = np.array([m.nnz for m in matrices], dtype=np.int64)

    # naive: contiguous chunks in incoming order
    chunks = np.array_split(np.arange(len(matrices)), N_WORKERS)
    naive_loads = loads_for([c.tolist() for c in chunks], weights)
    # round-robin
    rr = [list(range(w, len(matrices), N_WORKERS)) for w in range(N_WORKERS)]
    rr_loads = loads_for(rr, weights)
    # LPT (the paper's step)
    _, lpt_report = balance_by_nnz(matrices, N_WORKERS)

    def imb(loads):
        return loads.max() / loads.mean()

    lines = [
        "ABL-BAL: worker load imbalance (max/mean; 1.0 = perfect)",
        f"  places (matrices)    : {len(matrices):,}",
        f"  nnz range            : {weights.min()} .. {weights.max():,}",
        f"  naive contiguous     : {imb(naive_loads):.3f}",
        f"  round-robin          : {imb(rr_loads):.3f}",
        f"  LPT by nnz (paper)   : {lpt_report.imbalance:.3f}",
        "  makespan ratio naive/LPT: "
        f"{naive_loads.max() / lpt_report.max_load:.2f}x",
        "  paper: balancing 'crucial'; unbalanced workers sit idle.",
    ]
    write_report("abl_balance", "\n".join(lines))

    # LPT must beat both baselines and be near-perfect on real data
    assert lpt_report.imbalance <= imb(rr_loads)
    assert lpt_report.imbalance < imb(naive_loads)
    assert lpt_report.imbalance < 1.05
    # naive contiguous on place-id-ordered data is visibly unbalanced
    assert imb(naive_loads) > 1.2


def test_abl_balance_lpt_cost(benchmark, bench_pop, bench_week):
    """The balancing step itself is cheap (seconds at paper scale)."""
    sliced = slice_records(bench_week.records, 0, repro.HOURS_PER_WEEK)
    matrices = build_collocation_matrices(sliced, 0, repro.HOURS_PER_WEEK)
    weights = [m.nnz for m in matrices]
    buckets, report = benchmark(lpt_partition, weights, N_WORKERS)
    assert report.imbalance < 1.05


def test_abl_balance_skew_is_real(benchmark, bench_pop, bench_week):
    """The premise: place sizes vary over orders of magnitude ('from a
    single individual to tens of thousands')."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sliced = slice_records(bench_week.records, 0, repro.HOURS_PER_WEEK)
    matrices = build_collocation_matrices(sliced, 0, repro.HOURS_PER_WEEK)
    weights = np.array([m.nnz for m in matrices])
    assert weights.max() > 100 * weights.min()
    assert weights.max() > 10 * np.median(weights)
