"""TXT-SIM — distributed simulation and spatial partitioning.

Paper Section II: chiSIM distributes places across processes "with the
objective of minimizing person agent movement between processes", and a
one-year full-city run takes minutes on 128-256 processes.

Measured here:

* agent-migration volume under random / round-robin / spatial(RCB) /
  refined partitions — the ordering the paper's design presumes;
* communication bytes metered by the simulated cluster;
* distributed-run wall time (the engine benchmark).
"""

from __future__ import annotations

import numpy as np

import repro
from repro._util import human_bytes
from repro.distrib import (
    DistributedSimulation,
    movement_matrix,
    random_partition,
    refine_partition,
    round_robin_partition,
    spatial_partition,
)

from conftest import write_report

N_RANKS = 8


def build_partitions(pop):
    coords = pop.places.coords()
    weights = pop.places.capacity.astype(float)
    grid = pop.schedule_generator().week(0)
    movement = movement_matrix(grid.place, pop.n_places)
    rng = np.random.default_rng(0)
    parts = {
        "random": random_partition(pop.n_places, N_RANKS, rng),
        "round-robin": round_robin_partition(pop.n_places, N_RANKS),
        "spatial": spatial_partition(coords, weights, N_RANKS),
    }
    parts["refined"] = refine_partition(parts["spatial"], movement, weights)
    return parts, movement


def test_txt_sim_partition_migration(benchmark, bench_pop):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    parts, movement = build_partitions(bench_pop)
    cfg = repro.SimulationConfig(
        scale=bench_pop.scale,
        duration_hours=repro.HOURS_PER_WEEK,
        n_ranks=N_RANKS,
    )
    results = {}
    for name, part in parts.items():
        res = DistributedSimulation(bench_pop, cfg, part).run()
        results[name] = res

    lines = [
        f"TXT-SIM: agent migration by partition ({N_RANKS} ranks, 1 week)",
        f"  {'partition':>12} {'migrations':>12} {'comm bytes':>12} "
        f"{'per agent-day':>14}",
    ]
    days = 7 * bench_pop.n_persons
    for name, res in results.items():
        lines.append(
            f"  {name:>12} {res.total_migrations:>12,} "
            f"{human_bytes(res.traffic.bytes_sent):>12} "
            f"{res.total_migrations / days:>14.2f}"
        )
    lines.append(
        "  paper: spatial partitioning chosen to minimize migration; the"
    )
    lines.append("  ordering refined <= spatial < random must hold.")
    write_report("txt_sim_partition", "\n".join(lines))

    # the paper's design premise, as a hard ordering
    assert (
        results["refined"].total_migrations
        <= results["spatial"].total_migrations
        < results["random"].total_migrations
    )
    # all partitions produce the same total event stream length
    counts = {name: r.total_events for name, r in results.items()}
    assert len(set(counts.values())) == 1


def test_txt_sim_distributed_run_time(benchmark, bench_pop):
    parts, _ = build_partitions(bench_pop)
    cfg = repro.SimulationConfig(
        scale=bench_pop.scale,
        duration_hours=repro.HOURS_PER_WEEK,
        n_ranks=N_RANKS,
    )
    sim = DistributedSimulation(bench_pop, cfg, parts["refined"])
    res = benchmark.pedantic(sim.run, rounds=2, iterations=1)
    assert res.total_events > 0


def test_txt_sim_serial_engine_time(benchmark, bench_pop):
    """Serial engine baseline for the same week."""
    cfg = repro.SimulationConfig(
        scale=bench_pop.scale, duration_hours=repro.HOURS_PER_WEEK
    )
    sim = repro.Simulation(bench_pop, cfg)
    res = benchmark.pedantic(sim.run_fast, rounds=3, iterations=1)
    assert res.n_events > 0


def test_txt_sim_process_cluster_equivalence(benchmark, bench_pop):
    """The model on real OS processes (fork + queues): same events as the
    thread-based simulated cluster, at its own wall-clock cost."""
    from repro.distrib import ProcessBspCluster

    parts, _ = build_partitions(bench_pop)
    cfg = repro.SimulationConfig(
        scale=bench_pop.scale,
        duration_hours=24,  # one day: process IPC is the cost being measured
        n_ranks=4,
    )
    part4 = spatial_partition(
        bench_pop.places.coords(), bench_pop.places.capacity.astype(float), 4
    )
    sim = DistributedSimulation(bench_pop, cfg, part4)
    res_proc = benchmark.pedantic(
        sim.run,
        kwargs={"cluster": ProcessBspCluster(4)},
        rounds=2,
        iterations=1,
    )
    res_thread = sim.run()
    assert (
        res_proc.merged_records() == res_thread.merged_records()
    ).all()


def test_txt_sim_refinement_cost(benchmark, bench_pop):
    """One-time cost of computing the refined partition."""
    coords = bench_pop.places.coords()
    weights = bench_pop.places.capacity.astype(float)
    grid = bench_pop.schedule_generator().week(0)
    movement = movement_matrix(grid.place, bench_pop.n_places)

    def build():
        base = spatial_partition(coords, weights, N_RANKS)
        return refine_partition(base, movement, weights)

    part = benchmark.pedantic(build, rounds=3, iterations=1)
    assert part.n_ranks == N_RANKS
