"""ABL-GEN — random generators vs the emergent collocation network.

Paper conclusions: "Various methods exist for generating random scale-free
networks that may be superficially similar in structure to those displayed
by the chiSIM model ... Random synthetic networks could be a starting
point ... but would need to be tailored to capture the more complex
structure in the vertex degree distribution graphs presented in this
paper."

We make that claim quantitative.  For each generator family referenced by
the paper — Watts–Strogatz [4], Barabási–Albert [19], Dangalchev [24] —
plus a degree-matched configuration model, we generate a graph of the same
size and edge budget and compare against the emergent network on the three
Section V statistics:

* degree-distribution shape (RMS log distance between the two P(k)s);
* mean local clustering (Figure 4's quantity);
* head flatness (Figure 3's degree-1..7 plateau).

Expected outcome (asserted): the configuration model matches degrees by
construction but misses clustering; BA misses the flat head; WS misses the
heavy tail; none matches all three — which is the paper's point.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import degree_distribution, local_clustering
from repro.analysis.clustering import mean_clustering
from repro.netgen import (
    barabasi_albert,
    configuration_model,
    dangalchev,
    watts_strogatz,
)

from conftest import write_report


def distribution_distance(d_a, d_b):
    """RMS distance between two degree distributions in log10 P(k), over
    the union support (missing degrees imputed at one count)."""
    ks = np.union1d(d_a.degrees, d_b.degrees).astype(np.int64)

    def logp(dist):
        p = np.full(len(ks), 1.0)  # one-count floor
        idx = np.searchsorted(ks, dist.degrees)
        p[idx] = dist.counts
        return np.log10(p / p.sum())

    return float(np.sqrt(np.mean((logp(d_a) - logp(d_b)) ** 2)))


def make_generators(net, rng):
    n = net.n_persons
    m_edges = net.n_edges
    mean_k = max(2, int(round(2 * m_edges / n)))
    ws_k = mean_k if mean_k % 2 == 0 else mean_k + 1
    ba_m = max(1, int(round(m_edges / n)))
    return {
        "watts_strogatz": lambda: watts_strogatz(n, min(ws_k, n - 2), 0.1, rng),
        "barabasi_albert": lambda: barabasi_albert(n, ba_m, rng),
        "dangalchev": lambda: dangalchev(min(n, 1500), ba_m, 1.0, rng),
        "config_model": lambda: configuration_model(net.degrees(), rng),
    }


def test_abl_netgen_comparison(benchmark, bench_net):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rng = np.random.default_rng(1)
    real_dist = degree_distribution(bench_net.degrees())
    real_cc = mean_clustering(local_clustering(bench_net), bench_net.degrees())
    real_flat = real_dist.flatness(1, 7)

    rows = []
    metrics = {}
    for name, make in make_generators(bench_net, rng).items():
        g = make()
        d = degree_distribution(g.degrees())
        cc = mean_clustering(local_clustering(g), g.degrees())
        dist = distribution_distance(real_dist, d)
        flat = d.flatness(1, 7)
        metrics[name] = {"cc": cc, "dist": dist, "flat": flat}
        rows.append(
            f"  {name:>16}: deg-dist-rms={dist:5.2f}  meanC={cc:.3f}  "
            f"head-flatness={flat if np.isfinite(flat) else float('inf'):.2f}"
        )
    lines = [
        "ABL-GEN: random generators vs the emergent collocation network",
        f"  {'emergent':>16}: deg-dist-rms= 0.00  meanC={real_cc:.3f}  "
        f"head-flatness={real_flat:.2f}",
        *rows,
        "  paper: synthetic nets are 'superficially similar' but miss the",
        "  complex degree structure; tailoring (config model) fixes degrees",
        "  but still misses clustering.",
    ]
    write_report("abl_netgen", "\n".join(lines))

    cm = metrics["config_model"]
    ba = metrics["barabasi_albert"]
    ws = metrics["watts_strogatz"]
    # config model nails the degree distribution ...
    assert cm["dist"] < ba["dist"]
    assert cm["dist"] < ws["dist"]
    # ... but cannot reproduce the clustering
    assert real_cc > 2 * cm["cc"]
    # BA cannot produce the flat low-degree head (its P(k) falls steeply
    # from k=m; flatness over 1..7 is inf or huge)
    assert not np.isfinite(ba["flat"]) or ba["flat"] > 3 * real_flat
    # every family misses at least one of the two structure axes
    for name, m in metrics.items():
        assert (m["dist"] > 0.3) or (real_cc > 2 * m["cc"]), name


def test_abl_netgen_generation_cost(benchmark, bench_net):
    """Cost of the strongest baseline (degree-matched config model)."""
    rng = np.random.default_rng(3)
    degrees = bench_net.degrees()
    net = benchmark.pedantic(
        configuration_model, args=(degrees, rng), rounds=3, iterations=1
    )
    assert net.n_edges > 0
