"""BENCH-QUERY — warm tile-cache window queries vs cold per-query synthesis.

Reproduces the ``bench_txt_fourweek`` configuration (8 ranks, 4 simulated
weeks, bench-scale population) and serves a repeated sliding-window
workload — 22 one-week windows stepped by 24 h plus unaligned variants,
each requested ``REPEATS`` times as a multi-user analysis service would
field them — two ways:

* **cold**: every window is a fresh ``synthesize_from_logs`` over the log
  directory (records re-read and re-packed per query);
* **warm**: the windows go through a :class:`~repro.core.tilecache.TileCache`
  after a one-off warm-up — each query composes O(log W) cached
  power-of-two tiles plus fringe corrections.

Emits ``BENCH_query.json`` (cold/warm totals, per-query latency, the
warm/cold speedup, cache build cost, and peak cached nnz vs the budget)
and — with ``--check`` — fails if the warm/cold speedup ratio regresses
more than 20% against the committed baseline.  As with the kernel bench,
the gate compares *speedup ratios*, not absolute latency: both paths run
in the same process on the same machine, so the ratio is stable across
hardware.

Usage::

    PYTHONPATH=src python benchmarks/bench_query_windows.py            # print
    PYTHONPATH=src python benchmarks/bench_query_windows.py --update  # rewrite baseline
    PYTHONPATH=src python benchmarks/bench_query_windows.py --check   # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

import repro
from repro.core.tilecache import TileCache
from repro.distrib import DistributedSimulation, spatial_partition
from repro.evlog import LogSet

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_query.json"

BENCH_PERSONS = 6_000
SEED = 2017
N_RANKS = 8
WEEKS = 4
BATCH_SIZE = 2
TILE_HOURS = 24
#: each window is requested this many times (the cache exists to serve
#: repeated traffic; cold synthesis pays full price per request)
REPEATS = 3
ROUNDS = 3  # best-of, to shed scheduler/cold-cache noise (as kernel bench)
#: in-memory cache budget (stored nonzeros); the bench asserts the cache
#: honors it while still hitting the speedup target
BUDGET_NNZ = 60_000_000
REGRESSION_MARGIN = 0.20  # fail --check below 80% of baseline speedup
SPEEDUP_TARGET = 10.0  # warm must beat cold by at least this factor


def sliding_windows() -> list[tuple[int, int]]:
    """One workload pass: one-week windows stepped by one day across the
    four simulated weeks, plus unaligned (+6 h / +18 h) variants and the
    full run.  The measured workload is ``REPEATS`` such passes — the
    repeated overlapping reads a multi-user analysis service fields."""
    horizon = WEEKS * repro.HOURS_PER_WEEK
    windows = []
    t0 = 0
    while t0 + repro.HOURS_PER_WEEK <= horizon:
        windows.append((t0, t0 + repro.HOURS_PER_WEEK))
        t0 += TILE_HOURS
    for off in (6, 18):
        windows.append((off, off + repro.HOURS_PER_WEEK))
    windows.append((0, horizon))  # the full run
    return windows


def generate_logs(log_dir: Path):
    pop = repro.generate_population(
        repro.ScaleConfig(n_persons=BENCH_PERSONS, seed=SEED)
    )
    cfg = repro.SimulationConfig(
        scale=pop.scale,
        duration_hours=WEEKS * repro.HOURS_PER_WEEK,
        n_ranks=N_RANKS,
    )
    part = spatial_partition(
        pop.places.coords(), pop.places.capacity.astype(float), N_RANKS
    )
    DistributedSimulation(pop, cfg, part).run(log_dir=log_dir)
    return pop, LogSet(log_dir)


def run_bench() -> dict:
    windows = sliding_windows()
    requests = [w for _ in range(REPEATS) for w in windows]
    with tempfile.TemporaryDirectory(prefix="bench_query_") as tmp:
        log_dir = Path(tmp)
        pop, logs = generate_logs(log_dir)
        horizon = WEEKS * repro.HOURS_PER_WEEK

        # Each side runs the full request loop ROUNDS times, best-of —
        # same machine, same loop, so the warm/cold *ratio* is robust to
        # background load.  Only the first pass's responses are retained
        # (for the identity check below): holding every response alive
        # just makes Python's GC rescan them all on both sides, measuring
        # the harness instead of the query paths.
        # -- cold: fresh synthesis per request -----------------------------
        cold_nets = []
        cold_seconds = None
        for round_no in range(ROUNDS):
            tic = time.perf_counter()
            for i, (t0, t1) in enumerate(requests):
                net, _ = repro.synthesize_from_logs(
                    logs, pop.n_persons, t0, t1,
                    batch_size=BATCH_SIZE, kernel="intervals",
                )
                if round_no == 0 and i < len(windows):
                    cold_nets.append(net)
            elapsed = time.perf_counter() - tic
            if cold_seconds is None or elapsed < cold_seconds:
                cold_seconds = elapsed

        # -- warm: tile cache, warm-up timed separately --------------------
        with TileCache(
            logs, pop.n_persons,
            tile_hours=TILE_HOURS, budget_nnz=BUDGET_NNZ,
        ) as cache:
            tic = time.perf_counter()
            cache.warm(0, horizon)
            build_seconds = time.perf_counter() - tic

            warm_nets = []
            peak_nnz = cache.cached_nnz
            warm_seconds = None
            for round_no in range(ROUNDS):
                tic = time.perf_counter()
                for i, (t0, t1) in enumerate(requests):
                    net = cache.query_window(t0, t1)
                    if round_no == 0 and i < len(windows):
                        warm_nets.append(net)
                    peak_nnz = max(peak_nnz, cache.cached_nnz)
                elapsed = time.perf_counter() - tic
                if warm_seconds is None or elapsed < warm_seconds:
                    warm_seconds = elapsed
            stats = cache.stats

        identical = all(
            np.array_equal(c.adjacency.data, w.adjacency.data)
            and np.array_equal(c.adjacency.indices, w.adjacency.indices)
            and np.array_equal(c.adjacency.indptr, w.adjacency.indptr)
            for c, w in zip(cold_nets, warm_nets)
        )

    speedup = cold_seconds / warm_seconds
    return {
        "bench": "query_windows",
        "config": {
            "persons": BENCH_PERSONS,
            "seed": SEED,
            "ranks": N_RANKS,
            "weeks": WEEKS,
            "tile_hours": TILE_HOURS,
            "budget_nnz": BUDGET_NNZ,
            "n_windows": len(windows),
            "repeats": REPEATS,
            "n_requests": len(requests),
            "speedup_target": SPEEDUP_TARGET,
        },
        "cold": {
            "seconds": round(cold_seconds, 4),
            "per_query_ms": round(1000 * cold_seconds / len(requests), 2),
        },
        "warm": {
            "build_seconds": round(build_seconds, 4),
            "seconds": round(warm_seconds, 4),
            "per_query_ms": round(1000 * warm_seconds / len(requests), 2),
            "tile_hits": stats.tile_hits,
            "fringe_hits": stats.fringe_hits,
            "tiles_built": stats.tiles_built,
            "tiles_merged": stats.tiles_merged,
            "evictions": stats.evictions,
            "fringe_hours": stats.fringe_hours,
        },
        "speedup": round(speedup, 2),
        "cache_nnz_peak": peak_nnz,
        "cache_under_budget": peak_nnz <= BUDGET_NNZ,
        "outputs_bit_identical": identical,
    }


def check_regression(measured: dict, baseline: dict) -> list[str]:
    failures = []
    if not measured["outputs_bit_identical"]:
        failures.append("warm queries are no longer bit-identical to cold")
    if not measured["cache_under_budget"]:
        failures.append(
            f"cache peaked at {measured['cache_nnz_peak']:,} nnz, over the "
            f"{measured['config']['budget_nnz']:,} budget"
        )
    base_speedup = baseline["speedup"]
    floor = base_speedup * (1 - REGRESSION_MARGIN)
    if measured["speedup"] < floor:
        failures.append(
            f"warm/cold speedup {measured['speedup']:.2f}x < {floor:.2f}x "
            f"(baseline {base_speedup:.2f}x - {REGRESSION_MARGIN:.0%})"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--update", action="store_true",
        help=f"rewrite the committed baseline {BASELINE_PATH.name}",
    )
    mode.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) if the warm/cold speedup regressed >20%% "
        "against the committed baseline",
    )
    args = parser.parse_args(argv)

    measured = run_bench()
    print(json.dumps(measured, indent=2))

    if args.update:
        # the committed baseline must itself demonstrate the target: the
        # per-run CI gate only checks the relative ratio (stable across
        # hardware), so sub-target numbers are rejected here instead
        if measured["speedup"] < SPEEDUP_TARGET:
            print(
                f"\nrefusing baseline: speedup {measured['speedup']:.2f}x "
                f"below the {SPEEDUP_TARGET:.0f}x target",
                file=sys.stderr,
            )
            return 1
        BASELINE_PATH.write_text(json.dumps(measured, indent=2) + "\n")
        print(f"\nbaseline written to {BASELINE_PATH}")
        return 0
    if args.check:
        if not BASELINE_PATH.exists():
            print(f"\nno committed baseline at {BASELINE_PATH}", file=sys.stderr)
            return 1
        baseline = json.loads(BASELINE_PATH.read_text())
        failures = check_regression(measured, baseline)
        if failures:
            print("\nREGRESSION:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print("\nno regression vs committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
