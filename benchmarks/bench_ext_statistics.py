"""EXT-STATS — the "additional network statistics" the conclusion calls for.

Paper conclusion: "Further exploration of this approach to generate
realistic social network structures will need to identify additional
network statistics and their relative contributions to the features of the
network."

This bench computes and records the candidates implemented in this repo,
each with a falsifiable expectation on collocation networks:

* degree assortativity r > 0 (social cliques are assortative);
* vertex strength ≫ degree (repeated contact hours);
* edge-weight distribution bimodal-ish: a mass of brief venue contacts
  plus a household plateau near the weekly maximum;
* Barrat weighted clustering close to (and correlated with) binary
  clustering;
* age-group contact matrix strongly diagonal for children;
* week-over-week edge persistence well inside (0, 1): a stable core plus
  venue churn.
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis import (
    contact_matrix,
    degree_assortativity,
    edge_weight_distribution,
    local_clustering,
    strength_distribution,
    weighted_clustering,
)
from repro.core import StreamingSynthesizer
from repro.distrib import DistributedSimulation, spatial_partition

from conftest import write_report


def test_ext_statistics_suite(benchmark, bench_pop, bench_net):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    r = degree_assortativity(bench_net)
    strength = strength_distribution(bench_net)
    degrees = bench_net.degrees()
    weights, counts = edge_weight_distribution(bench_net)
    cm = contact_matrix(bench_net, bench_pop.persons)
    frac = cm.assortativity_fraction()

    wc = weighted_clustering(bench_net)
    bc = local_clustering(bench_net)
    defined = degrees >= 2
    corr = float(np.corrcoef(wc[defined], bc[defined])[0, 1])

    lines = [
        "EXT-STATS: additional network statistics (paper conclusion)",
        f"  degree assortativity r     : {r:+.3f}",
        f"  mean degree / mean strength: {degrees.mean():.1f} / "
        f"{strength.mean_degree:.1f}",
        f"  modal edge weight          : {weights[np.argmax(counts)]} h",
        f"  max edge weight            : {weights.max()} h "
        f"(week = {repro.HOURS_PER_WEEK} h)",
        f"  weighted~binary clustering corr: {corr:.3f}",
        "  within-group contact fraction: "
        + ", ".join(f"{lb}={f:.2f}" for lb, f in zip(cm.labels, frac)),
    ]
    write_report("ext_statistics", "\n".join(lines))

    assert r > 0.05  # assortative
    assert strength.mean_degree > 2 * degrees.mean()
    assert weights[np.argmax(counts)] <= 3  # venue contacts dominate pairs
    assert weights.max() >= 60  # household co-residents share most hours
    assert corr > 0.5
    assert frac[0] > frac[3]  # children most within-group assortative


def test_ext_assortativity_cost(benchmark, bench_net):
    r = benchmark(degree_assortativity, bench_net)
    assert np.isfinite(r)


def test_ext_weighted_clustering_cost(benchmark, bench_net):
    wc = benchmark.pedantic(
        weighted_clustering, args=(bench_net,), rounds=2, iterations=1
    )
    assert wc.max() <= 1.0


def test_ext_temporal_persistence(benchmark, bench_pop, tmp_path):
    """Two-week series: persistence of the contact core."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cfg = repro.SimulationConfig(
        scale=bench_pop.scale,
        duration_hours=2 * repro.HOURS_PER_WEEK,
        n_ranks=4,
    )
    part = spatial_partition(
        bench_pop.places.coords(), bench_pop.places.capacity.astype(float), 4
    )
    DistributedSimulation(bench_pop, cfg, part).run(log_dir=tmp_path)
    series = StreamingSynthesizer(bench_pop.n_persons).process(
        str(tmp_path), 2
    )
    persistence = series.edge_persistence()[0]
    weeks, rec_counts = series.edge_recurrence()
    write_report(
        "ext_temporal",
        "EXT-STATS (temporal): week-over-week edge dynamics\n"
        f"  persistence (w1 -> w2): {persistence:.3f}\n"
        f"  recurrence: {dict(zip(weeks.tolist(), rec_counts.tolist()))}\n"
        "  stable core (household/school/work) + churning venue fringe",
    )
    assert 0.25 < persistence < 0.95
