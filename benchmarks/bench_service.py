"""BENCH-SERVICE — the network-query service under 64 concurrent clients.

Stands up a real :class:`~repro.service.server.NetworkQueryService` over
freshly simulated logs and drives it with ``N_CLIENTS`` concurrent
socket clients, each issuing a deterministic per-client mix of
``window`` / ``degrees`` / ``ego`` requests over a sliding pool of
one-week windows.  Three phases:

* **cold reference** — every pool window synthesized directly
  (``synthesize_from_logs``), timed; these networks are also the
  bit-identity references;
* **burst** — all clients request the *same cold window* at once, which
  must coalesce into one composition;
* **load** — the measured mixed workload: per-request latency is
  recorded client-side (wall time around each request), yielding
  p50/p95/p99 latency and queries/sec.

Emits ``BENCH_service.json``.  The ``--check`` gate compares *ratios*
against the committed baseline — the service-vs-cold throughput gain,
perfect success rate, burst coalescing, and response bit-identity —
not absolute latency, so runner hardware doesn't matter.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # print
    PYTHONPATH=src python benchmarks/bench_service.py --update   # rewrite baseline
    PYTHONPATH=src python benchmarks/bench_service.py --check    # CI gate
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

import repro
from repro.service import NetworkQueryService, ServiceClient, ServiceConfig
from repro.distrib import DistributedSimulation, spatial_partition

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_service.json"

BENCH_PERSONS = 4_000
SEED = 2017
N_RANKS = 4
WEEKS = 2
TILE_HOURS = 24
N_CLIENTS = 64
QUERIES_PER_CLIENT = 6
#: request mix per client: mostly full-window CSR fetches, with degree
#: summaries and ego subgraphs mixed in as an analysis workload would
OP_WEIGHTS = {"window": 0.7, "degrees": 0.2, "ego": 0.1}
REGRESSION_MARGIN = 0.20  # fail --check below 80% of baseline gain


def window_pool() -> list[tuple[int, int]]:
    """One-week windows stepped by one day across the run, plus an
    unaligned +6 h variant and the full horizon."""
    horizon = WEEKS * repro.HOURS_PER_WEEK
    windows = []
    t0 = 0
    while t0 + repro.HOURS_PER_WEEK <= horizon:
        windows.append((t0, t0 + repro.HOURS_PER_WEEK))
        t0 += TILE_HOURS
    windows.append((6, 6 + repro.HOURS_PER_WEEK))
    windows.append((0, horizon))
    return windows


def generate_logs(log_dir: Path):
    pop = repro.generate_population(
        repro.ScaleConfig(n_persons=BENCH_PERSONS, seed=SEED)
    )
    cfg = repro.SimulationConfig(
        scale=pop.scale,
        duration_hours=WEEKS * repro.HOURS_PER_WEEK,
        n_ranks=N_RANKS,
    )
    part = spatial_partition(
        pop.places.coords(), pop.places.capacity.astype(float), N_RANKS
    )
    DistributedSimulation(pop, cfg, part).run(log_dir=log_dir)
    return pop


def client_plan(client_no: int, windows) -> list[tuple[str, tuple[int, int]]]:
    """Deterministic per-client request sequence."""
    rng = np.random.default_rng(10_000 + client_no)
    ops = list(OP_WEIGHTS)
    probs = np.array(list(OP_WEIGHTS.values()))
    plan = []
    for _ in range(QUERIES_PER_CLIENT):
        op = ops[rng.choice(len(ops), p=probs / probs.sum())]
        window = windows[rng.integers(len(windows))]
        plan.append((op, window))
    return plan


async def run_client(port: int, client_no: int, windows) -> list[dict]:
    """Execute one client's plan; return per-request latency records.

    Each record carries the server-echoed trace id (the client attaches
    its span context to every request header), so the bench also proves
    the trace round-trip holds under full concurrent load.
    """
    records = []
    async with ServiceClient(port=port, tenant=f"c{client_no:02d}") as client:
        for op, (t0, t1) in client_plan(client_no, windows):
            client.last_trace_id = None
            tic = time.perf_counter()
            if op == "window":
                await client.query_window(t0, t1)
            elif op == "degrees":
                await client.degree_summary(t0, t1)
            else:
                await client.query_ego(client_no, t0, t1)
            ms = 1000 * (time.perf_counter() - tic)
            records.append(
                {"op": op, "ms": ms, "trace_id": client.last_trace_id}
            )
    return records


async def drive_service(log_dir: Path, pop, windows, cold_refs) -> dict:
    config = ServiceConfig(
        port=0, tile_hours=TILE_HOURS, executor_threads=2, prefetch_tiles=1
    )
    service = NetworkQueryService(
        log_dir, pop.n_persons, places=pop.places, config=config
    )
    async with service:
        port = service.port

        # -- burst: every client hits the same cold window at once ------
        burst_window = windows[len(windows) // 2]
        burst_clients = [
            ServiceClient(port=port, tenant=f"b{i:02d}")
            for i in range(N_CLIENTS)
        ]
        await asyncio.gather(*(c.connect() for c in burst_clients))
        tic = time.perf_counter()
        burst_nets = await asyncio.gather(
            *(c.query_window(*burst_window) for c in burst_clients)
        )
        burst_seconds = time.perf_counter() - tic
        await asyncio.gather(*(c.close() for c in burst_clients))
        burst_compositions = service.stats.compositions
        burst_coalesced = service.stats.coalesced
        burst_identical = all(
            np.array_equal(n.adjacency.data, cold_refs[burst_window].adjacency.data)
            for n in burst_nets
        )

        # -- warm the rest of the pool once, then the measured load -----
        async with ServiceClient(port=port, tenant="warmup") as warm:
            for window in windows:
                await warm.query_window(*window)
        await service.prefetch_idle()

        load_base_queries = service.stats.queries
        load_base_comps = service.stats.compositions
        load_base_coal = service.stats.coalesced
        tic = time.perf_counter()
        per_client = await asyncio.gather(
            *(run_client(port, i, windows) for i in range(N_CLIENTS))
        )
        load_seconds = time.perf_counter() - tic
        load_queries = service.stats.queries - load_base_queries
        load_compositions = service.stats.compositions - load_base_comps
        load_coalesced = service.stats.coalesced - load_base_coal

        # -- bit-identity of served windows vs the cold references ------
        identical = burst_identical
        async with ServiceClient(port=port, tenant="verify") as verify:
            for window, ref in cold_refs.items():
                net = await verify.query_window(*window)
                identical = identical and (
                    np.array_equal(net.adjacency.data, ref.adjacency.data)
                    and np.array_equal(
                        net.adjacency.indices, ref.adjacency.indices
                    )
                    and np.array_equal(
                        net.adjacency.indptr, ref.adjacency.indptr
                    )
                )
        stats = service.stats.snapshot()

    latencies = [r["ms"] for recs in per_client for r in recs]
    expected = N_CLIENTS * QUERIES_PER_CLIENT
    by_op: dict[str, list[float]] = {}
    for recs in per_client:
        for r in recs:
            by_op.setdefault(r["op"], []).append(r["ms"])
    trace_ids = [r["trace_id"] for recs in per_client for r in recs]
    traced = [t for t in trace_ids if t]
    return {
        "burst": {
            "window": list(burst_window),
            "clients": N_CLIENTS,
            "seconds": round(burst_seconds, 4),
            "compositions": burst_compositions,
            "coalesced": burst_coalesced,
        },
        "load": {
            "clients": N_CLIENTS,
            "n_requests": len(latencies),
            "success_rate": round(len(latencies) / expected, 4),
            "seconds": round(load_seconds, 4),
            "queries_per_sec": round(len(latencies) / load_seconds, 1),
            "latency_ms": {
                "p50": round(float(np.percentile(latencies, 50)), 2),
                "p95": round(float(np.percentile(latencies, 95)), 2),
                "p99": round(float(np.percentile(latencies, 99)), 2),
                "mean": round(float(np.mean(latencies)), 2),
                "max": round(float(np.max(latencies)), 2),
            },
            "latency_ms_by_op": {
                op: {
                    "n": len(ms),
                    "p50": round(float(np.percentile(ms, 50)), 2),
                    "p99": round(float(np.percentile(ms, 99)), 2),
                }
                for op, ms in sorted(by_op.items())
            },
            "compositions": load_compositions,
            "coalesced": load_coalesced,
            "trace_roundtrip": round(len(traced) / max(len(trace_ids), 1), 4),
            "distinct_trace_ids": len(set(traced)),
        },
        "server_stats": stats,
        "outputs_bit_identical": bool(identical),
    }


def run_bench() -> dict:
    windows = window_pool()
    with tempfile.TemporaryDirectory(prefix="bench_service_") as tmp:
        log_dir = Path(tmp)
        pop = generate_logs(log_dir)

        # -- cold reference: direct synthesis per pool window -----------
        cold_refs = {}
        tic = time.perf_counter()
        for t0, t1 in windows:
            net, _ = repro.synthesize_from_logs(
                log_dir, pop.n_persons, t0, t1, kernel="intervals"
            )
            cold_refs[(t0, t1)] = net
        cold_seconds = time.perf_counter() - tic
        cold_per_query_ms = 1000 * cold_seconds / len(windows)

        measured = asyncio.run(
            drive_service(log_dir, pop, windows, cold_refs)
        )

    cold_qps = len(windows) / cold_seconds
    gain = measured["load"]["queries_per_sec"] / cold_qps
    return {
        "bench": "service",
        "config": {
            "persons": BENCH_PERSONS,
            "seed": SEED,
            "ranks": N_RANKS,
            "weeks": WEEKS,
            "tile_hours": TILE_HOURS,
            "clients": N_CLIENTS,
            "queries_per_client": QUERIES_PER_CLIENT,
            "op_weights": OP_WEIGHTS,
            "n_windows": len(windows),
        },
        "cold": {
            "seconds": round(cold_seconds, 4),
            "per_query_ms": round(cold_per_query_ms, 2),
            "queries_per_sec": round(cold_qps, 2),
        },
        **measured,
        "throughput_gain_vs_cold": round(gain, 2),
    }


def check_regression(measured: dict, baseline: dict) -> list[str]:
    failures = []
    if not measured["outputs_bit_identical"]:
        failures.append(
            "served networks are no longer bit-identical to direct synthesis"
        )
    if measured["load"]["success_rate"] < 1.0:
        failures.append(
            f"success rate {measured['load']['success_rate']:.4f} < 1.0"
        )
    roundtrip = measured["load"].get("trace_roundtrip", 0.0)
    if roundtrip < 1.0:
        failures.append(
            f"trace-id round-trip {roundtrip:.4f} < 1.0: some responses "
            "came back without the request's trace id"
        )
    n_requests = measured["load"]["n_requests"]
    distinct = measured["load"].get("distinct_trace_ids", 0)
    if distinct != n_requests:
        failures.append(
            f"{distinct} distinct trace ids across {n_requests} requests: "
            "trace ids must be unique per request"
        )
    burst = measured["burst"]
    if burst["compositions"] >= burst["clients"]:
        failures.append(
            f"burst of {burst['clients']} identical queries ran "
            f"{burst['compositions']} compositions: coalescing is broken"
        )
    if burst["coalesced"] == 0:
        failures.append("burst produced zero coalesced queries")
    base_gain = baseline["throughput_gain_vs_cold"]
    floor = base_gain * (1 - REGRESSION_MARGIN)
    if measured["throughput_gain_vs_cold"] < floor:
        failures.append(
            f"service/cold throughput gain "
            f"{measured['throughput_gain_vs_cold']:.2f}x < {floor:.2f}x "
            f"(baseline {base_gain:.2f}x - {REGRESSION_MARGIN:.0%})"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--update", action="store_true",
        help=f"rewrite the committed baseline {BASELINE_PATH.name}",
    )
    mode.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) if the service regressed >20%% against the "
        "committed baseline",
    )
    args = parser.parse_args(argv)

    measured = run_bench()
    print(json.dumps(measured, indent=2))

    if args.update:
        if not measured["outputs_bit_identical"]:
            print("\nrefusing baseline: outputs not bit-identical",
                  file=sys.stderr)
            return 1
        if measured["load"]["success_rate"] < 1.0:
            print("\nrefusing baseline: queries failed", file=sys.stderr)
            return 1
        BASELINE_PATH.write_text(json.dumps(measured, indent=2) + "\n")
        print(f"\nbaseline written to {BASELINE_PATH}")
        return 0
    if args.check:
        if not BASELINE_PATH.exists():
            print(f"\nno committed baseline at {BASELINE_PATH}",
                  file=sys.stderr)
            return 1
        baseline = json.loads(BASELINE_PATH.read_text())
        failures = check_regression(measured, baseline)
        if failures:
            print("\nREGRESSION:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print("\nno regression vs committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
