"""BENCH-SHARD — place-sharded synthesis scaling and bit-identity.

Ten times the kernel bench's population (60,000 persons, 8 ranks, 4
simulated weeks) synthesized through :mod:`repro.distrib.shardsynth`:

* **bit-identity matrix** — every shard count × partition strategy
  (1/2/4 × round-robin/spatial/refined) runs through the real forked
  ``shard_synthesize`` path and must reproduce the single-process
  reference CSR exactly;
* **balance gate** — the refined partition's estimated-work imbalance
  must stay ≤ 1.2 at every shard count;
* **scaling gate** — the critical-path speedup at 4 shards must reach
  3x over the 1-shard run.

Timing uses the **critical-path model**: each shard's partial build is
measured serially (no oversubscription) and a k-shard wall is
``max_s(shard_s) + reduce``.  CI machines pin this suite to one or two
cores, where concurrently forked shards merely timeshare — serial
per-shard measurement is the machine-independent way to report what a
k-core box gets, and the ``--check`` gate compares same-run *ratios*
against the committed baseline, never absolute throughput.  The real
forked path still runs for every configuration (that is what the
bit-identity matrix exercises); only the stopwatch avoids it.

Emits ``BENCH_shard.json``; with ``--check``, fails if any identity or
balance gate breaks or the 4-shard speedup regresses more than 20%
against the committed baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py            # print
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --update   # rewrite baseline
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --check    # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

import repro
from repro.distrib import DistributedSimulation, spatial_partition
from repro.distrib.shardsynth import (
    STRATEGIES,
    _shard_partial,
    plan_shards,
    shard_synthesize,
)
from repro.evlog import LogSet

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_shard.json"

BENCH_PERSONS = 60_000  # 10x the kernel bench
SEED = 2017
N_RANKS = 8
WEEKS = 4
SHARD_COUNTS = (1, 2, 4)
TIMED_STRATEGY = "refined"
MAX_IMBALANCE = 1.2
MIN_SPEEDUP_4 = 3.0
REGRESSION_MARGIN = 0.20
REPEATS = 3  # best-of, to shed cold-cache noise


def generate_logs(log_dir: Path):
    pop = repro.generate_population(
        repro.ScaleConfig(n_persons=BENCH_PERSONS, seed=SEED)
    )
    cfg = repro.SimulationConfig(
        scale=pop.scale,
        duration_hours=WEEKS * repro.HOURS_PER_WEEK,
        n_ranks=N_RANKS,
    )
    part = spatial_partition(
        pop.places.coords(), pop.places.capacity.astype(float), N_RANKS
    )
    DistributedSimulation(pop, cfg, part).run(log_dir=log_dir)
    return pop, LogSet(log_dir)


def critical_path(plan, n_persons, t0, t1) -> dict:
    """Best-of-``REPEATS`` serial measurement of one plan's k-shard wall:
    ``max_s(shard partial) + reduce``.  Planning is excluded — a shard
    plan is computed once and amortized over every query on the logs."""
    best_shards = [float("inf")] * plan.n_shards
    best_reduce = float("inf")
    for _ in range(REPEATS):
        partials = []
        for s in range(plan.n_shards):
            tic = time.perf_counter()
            partial, _, _ = _shard_partial(
                s,
                plan,
                plan.descriptors,
                plan.shard_file_indices(s),
                n_persons,
                t0,
                t1,
                None,
            )
            best_shards[s] = min(
                best_shards[s], time.perf_counter() - tic
            )
            partials.append(partial)
        tic = time.perf_counter()
        total = partials[0]
        for p in partials[1:]:
            total = total + p
        best_reduce = min(best_reduce, time.perf_counter() - tic)
    wall = max(best_shards) + best_reduce
    return {
        "shard_seconds": [round(s, 4) for s in best_shards],
        "reduce_seconds": round(best_reduce, 4),
        "wall_seconds": round(wall, 4),
    }


def run_bench() -> dict:
    with tempfile.TemporaryDirectory(prefix="bench_shard_") as tmp:
        log_dir = Path(tmp)
        pop, logs = generate_logs(log_dir)
        coords = pop.places.coords()
        t0, t1 = 0, WEEKS * repro.HOURS_PER_WEEK

        tic = time.perf_counter()
        reference, ref_report = repro.synthesize_from_logs(
            logs, pop.n_persons, t0, t1,
            kernel="intervals", dispatch="zero-copy",
        )
        single_seconds = time.perf_counter() - tic

        # bit-identity matrix: the real forked path, every strategy ×
        # shard count
        identity: dict = {}
        all_identical = True
        imbalances: dict = {}
        for strategy in STRATEGIES:
            for k in SHARD_COUNTS:
                plan = plan_shards(
                    logs, k, t0, t1, strategy=strategy, coords=coords
                )
                net, report = shard_synthesize(
                    logs, pop.n_persons, t0, t1, shard_plan=plan
                )
                same = (
                    np.array_equal(
                        net.adjacency.data, reference.adjacency.data
                    )
                    and np.array_equal(
                        net.adjacency.indices, reference.adjacency.indices
                    )
                    and np.array_equal(
                        net.adjacency.indptr, reference.adjacency.indptr
                    )
                )
                all_identical = all_identical and same
                identity[f"{strategy}/{k}"] = {
                    "bit_identical": same,
                    "imbalance": round(report.imbalance, 4),
                    "records": report.n_records,
                }
                if strategy == TIMED_STRATEGY:
                    imbalances[k] = report.imbalance

        # scaling: critical-path walls under the timed strategy
        scaling: dict = {}
        for k in SHARD_COUNTS:
            plan = plan_shards(
                logs, k, t0, t1, strategy=TIMED_STRATEGY, coords=coords
            )
            scaling[str(k)] = critical_path(plan, pop.n_persons, t0, t1)
        wall_1 = scaling["1"]["wall_seconds"]
        for k in SHARD_COUNTS:
            scaling[str(k)]["speedup"] = round(
                wall_1 / scaling[str(k)]["wall_seconds"], 3
            )

    return {
        "bench": "shard_scaling",
        "config": {
            "persons": BENCH_PERSONS,
            "seed": SEED,
            "ranks": N_RANKS,
            "weeks": WEEKS,
            "window": [t0, t1],
            "records": ref_report.n_records,
            "strategies": list(STRATEGIES),
            "shard_counts": list(SHARD_COUNTS),
            "timed_strategy": TIMED_STRATEGY,
        },
        "single_process_seconds": round(single_seconds, 4),
        "identity": identity,
        "scaling": scaling,
        "imbalance": {str(k): round(v, 4) for k, v in imbalances.items()},
        "outputs_bit_identical": all_identical,
    }


def check_gates(measured: dict, baseline: dict | None) -> list[str]:
    failures = []
    if not measured["outputs_bit_identical"]:
        broken = [
            name
            for name, leg in measured["identity"].items()
            if not leg["bit_identical"]
        ]
        failures.append(
            f"sharded outputs are not bit-identical: {', '.join(broken)}"
        )
    for k, imb in measured["imbalance"].items():
        if imb > MAX_IMBALANCE:
            failures.append(
                f"{TIMED_STRATEGY} imbalance at {k} shard(s) is "
                f"{imb:.3f} > {MAX_IMBALANCE}"
            )
    speedup_4 = measured["scaling"]["4"]["speedup"]
    if baseline is None:
        # fresh baseline: the absolute scaling requirement must hold
        if speedup_4 < MIN_SPEEDUP_4:
            failures.append(
                f"4-shard speedup {speedup_4:.2f}x < required "
                f"{MIN_SPEEDUP_4:.1f}x"
            )
    else:
        base = baseline["scaling"]["4"]["speedup"]
        floor = base * (1 - REGRESSION_MARGIN)
        if speedup_4 < floor:
            failures.append(
                f"4-shard speedup {speedup_4:.2f}x < {floor:.2f}x "
                f"(baseline {base:.2f}x - {REGRESSION_MARGIN:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--update", action="store_true",
        help=f"rewrite the committed baseline {BASELINE_PATH.name}",
    )
    mode.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) on any identity/balance gate or a >20%% "
        "regression of the 4-shard speedup vs the committed baseline",
    )
    args = parser.parse_args(argv)

    measured = run_bench()
    print(json.dumps(measured, indent=2))

    if args.update:
        failures = check_gates(measured, baseline=None)
        if failures:
            print("\nBASELINE REJECTED:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        BASELINE_PATH.write_text(json.dumps(measured, indent=2) + "\n")
        print(f"\nbaseline written to {BASELINE_PATH}")
        return 0
    if args.check:
        if not BASELINE_PATH.exists():
            print(
                f"\nno committed baseline at {BASELINE_PATH}",
                file=sys.stderr,
            )
            return 1
        baseline = json.loads(BASELINE_PATH.read_text())
        failures = check_gates(measured, baseline)
        if failures:
            print("\nREGRESSION:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print("\nno regression vs committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
