"""TXT-4WK — the paper's exact Section V workflow at bench scale.

Paper: "The entire simulated time duration is four weeks with a time step
of 1 hour … The collocation network synthesis R script is executed on the
resulting log files to process **only the fourth week** of log data in
batches … The final aggregation step sums the resulting adjacency
matrices."

This bench runs that pipeline verbatim: a 4-week distributed run with
per-rank logs, fourth-week-only synthesis via the chunk index (log files
are opened but non-overlapping chunks are skipped), and cross-checks the
result against an in-memory week-4 synthesis.  It also reports the
index-pruning ratio — how much of the log the time slice avoided decoding.
"""

from __future__ import annotations

import numpy as np

import repro
from repro._util import human_bytes
from repro.distrib import DistributedSimulation, spatial_partition
from repro.evlog import LogSet
from repro.sim import Simulation

from conftest import write_report

N_RANKS = 8
WEEKS = 4


def test_txt_fourweek_workflow(benchmark, bench_pop, tmp_path):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cfg = repro.SimulationConfig(
        scale=bench_pop.scale,
        duration_hours=WEEKS * repro.HOURS_PER_WEEK,
        n_ranks=N_RANKS,
    )
    part = spatial_partition(
        bench_pop.places.coords(),
        bench_pop.places.capacity.astype(float),
        N_RANKS,
    )
    run = DistributedSimulation(bench_pop, cfg, part).run(log_dir=tmp_path)
    logs = LogSet(tmp_path)

    t0 = 3 * repro.HOURS_PER_WEEK
    t1 = 4 * repro.HOURS_PER_WEEK

    # index pruning: chunks touched for week 4 vs total
    total_chunks = 0
    touched = 0
    for reader in logs.iter_readers():
        total_chunks += reader.n_chunks
        touched += reader.chunks_overlapping(t0, t1)

    net, report = repro.synthesize_from_logs(
        logs, bench_pop.n_persons, t0, t1, batch_size=2
    )

    # oracle: serial week-4 window
    serial_cfg = repro.SimulationConfig(
        scale=bench_pop.scale, duration_hours=WEEKS * repro.HOURS_PER_WEEK
    )
    serial = Simulation(bench_pop, serial_cfg).run_fast()
    oracle, _ = repro.synthesize_network(
        serial.records, bench_pop.n_persons, t0, t1
    )
    assert (net.adjacency != oracle.adjacency).nnz == 0

    lines = [
        "TXT-4WK: four-week run, fourth-week-only synthesis (paper Sec V)",
        f"  ranks x weeks          : {N_RANKS} x {WEEKS}",
        f"  events logged          : {run.total_events:,}",
        f"  log bytes              : {human_bytes(logs.total_bytes())}",
        f"  chunks touched (wk 4)  : {touched}/{total_chunks} "
        f"({touched / total_chunks:.0%})",
        f"  week-4 network         : {net.n_edges:,} edges "
        f"({report.batches} independent batches)",
        "  paper: 256 files x ~100 MB, fourth week only, batches of 16;",
        "  batch jobs independent, adjacencies summed.",
    ]
    write_report("txt_fourweek", "\n".join(lines))

    assert touched < total_chunks  # the index actually pruned work
    assert report.batches == N_RANKS // 2


def test_txt_fourweek_sliced_read_cost(benchmark, bench_pop, tmp_path):
    """Read cost of one week out of four, served by the chunk index."""
    cfg = repro.SimulationConfig(
        scale=bench_pop.scale,
        duration_hours=WEEKS * repro.HOURS_PER_WEEK,
    )
    Simulation(bench_pop, cfg).run_fast(log_path=tmp_path / "rank_0000.evl")
    from repro.evlog import LogReader

    reader = LogReader(tmp_path / "rank_0000.evl")
    t0, t1 = 3 * repro.HOURS_PER_WEEK, 4 * repro.HOURS_PER_WEEK
    out = benchmark(reader.read_time_slice, t0, t1)
    assert len(out) > 0
    assert len(out) < reader.n_records
