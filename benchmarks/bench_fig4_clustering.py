"""FIG4 — histogram of the local vertex clustering coefficient.

Paper Figure 4: local clustering coefficient over all person vertices;
"many of the person nodes have a clustering coefficient of 1 which
indicates a high degree of local clustering", typical of small-world /
scale-free structure vs random graphs.

The shape assertion compares against a degree-matched random (Erdős–Rényi)
graph: the collocation network must have a far higher mean local
clustering, and a real spike at C = 1.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.analysis import (
    clustering_histogram,
    local_clustering,
)
from repro.analysis.clustering import mean_clustering
from repro.core import CollocationNetwork
from repro.viz import ascii_histogram

from conftest import write_report


def random_graph_same_density(net, rng):
    """Erdős–Rényi with the same vertex and expected edge count."""
    n = net.n_persons
    m = net.n_edges
    rows = rng.integers(0, n, 3 * m)
    cols = rng.integers(0, n, 3 * m)
    keep = rows < cols
    rows, cols = rows[keep][:m], cols[keep][:m]
    data = np.ones(len(rows), dtype=np.int64)
    adj = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    adj.data[:] = 1
    return CollocationNetwork(sp.triu(adj, k=1).tocsr())


def test_fig4_clustering_histogram(benchmark, bench_net):
    coeffs = benchmark.pedantic(
        local_clustering, args=(bench_net,), rounds=2, iterations=1
    )
    degrees = bench_net.degrees()
    edges, counts = clustering_histogram(coeffs, n_bins=20, degrees=degrees)

    rng = np.random.default_rng(0)
    random_net = random_graph_same_density(bench_net, rng)
    random_cc = local_clustering(random_net)
    random_mean = mean_clustering(random_cc, random_net.degrees())
    ours_mean = mean_clustering(coeffs, degrees)
    spike = counts[-1]

    lines = [
        "FIG4: local clustering coefficient histogram (all persons)",
        f"  mean local clustering      : {ours_mean:.3f}",
        f"  degree-matched ER baseline : {random_mean:.4f}",
        f"  vertices with C in [0.95,1]: {spike:,} "
        f"({spike / counts.sum():.1%} of defined)",
        "  paper: 'many of the person nodes have a clustering",
        "  coefficient of 1'; large C typical of small-world nets.",
        "",
        ascii_histogram(edges, counts, title="  C histogram", log_counts=True),
    ]
    write_report("fig4_clustering", "\n".join(lines))

    # a real spike at 1.0 exists
    assert spike > 0.005 * counts.sum()
    # collocation clustering far exceeds the random-graph baseline
    assert ours_mean > 10 * max(random_mean, 1e-6)
    # coefficients are valid
    assert coeffs.min() >= 0.0 and coeffs.max() <= 1.0


def test_fig4_small_world_sigma(benchmark, bench_net):
    """The paper's framing claim quantified: the collocation network is a
    small world (σ = (C/C_rand)/(L/L_rand) ≫ 1)."""
    from repro.analysis import small_world_sigma

    result = benchmark.pedantic(
        small_world_sigma,
        args=(bench_net,),
        kwargs={"n_sources": 12, "seed": 0},
        rounds=1,
        iterations=1,
    )
    write_report(
        "fig4_small_world",
        "FIG4 (framing): small-world coefficient\n"
        + "\n".join(f"  {k:>7}: {v:.3f}" for k, v in result.items())
        + "\n  sigma >> 1 => small world (Watts-Strogatz sense)",
    )
    assert result["sigma"] > 3.0
    assert result["L"] < 6.0
