"""TXT-CACHE — the write-cache size tradeoff.

Paper Section III: "A smaller cache will reduce memory usage but will
result in more individual write operations, which can be computationally
expensive.  In contrast, a larger cache will require more memory but will
provide a speed tradeoff as fewer write operations are required."

The sweep measures, per cache size: flush count (exactly records/cache),
cache memory, and wall time; the benchmark times the paper's nominal
10,000-record cache.
"""

from __future__ import annotations

import time

from repro._util import human_bytes
from repro.evlog import CachedLogWriter

from conftest import write_report

CACHE_SIZES = (100, 1_000, 10_000, 100_000)


def test_txt_cache_sweep(benchmark, bench_week, tmp_path):
    records = bench_week.records
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    times = {}
    for cache in CACHE_SIZES:
        path = tmp_path / f"cache_{cache}.evl"
        t0 = time.perf_counter()
        with CachedLogWriter(path, cache_records=cache) as w:
            w.log_batch(records)
            stats = w.stats
        elapsed = time.perf_counter() - t0
        times[cache] = elapsed
        rows.append(
            f"  {cache:>8,} {stats.flushes:>8} "
            f"{human_bytes(stats.cache_bytes):>12} {elapsed * 1e3:>9.1f} ms"
        )
    report = "\n".join(
        [
            "TXT-CACHE: cache size vs flush count vs memory vs time",
            f"  ({len(records):,} records; paper nominal cache = 10,000)",
            f"  {'cache':>8} {'flushes':>8} {'memory':>12} {'time':>12}",
            *rows,
        ]
    )
    write_report("txt_cache_tradeoff", report)

    # flush count is exactly ceil-ish records/cache: memory-IO tradeoff
    with CachedLogWriter(tmp_path / "a.evl", cache_records=100) as w:
        w.log_batch(records)
        small_flushes = w.stats.flushes
    with CachedLogWriter(tmp_path / "b.evl", cache_records=100_000) as w:
        w.log_batch(records)
        big_flushes = w.stats.flushes
    assert small_flushes > 50 * big_flushes


def test_txt_cache_nominal_throughput(benchmark, bench_week, tmp_path):
    """Write throughput at the paper's nominal 10k-record cache."""
    records = bench_week.records

    def write(counter=[0]):
        counter[0] += 1
        with CachedLogWriter(
            tmp_path / f"n{counter[0]}.evl", cache_records=10_000
        ) as w:
            w.log_batch(records)
            stats = w.stats
        return stats  # read flushes after close (final partial flush)

    stats = benchmark.pedantic(write, rounds=3, iterations=1)
    assert stats.flushes == -(-len(records) // 10_000)


def test_txt_cache_tiny_cache_slower(benchmark, bench_week, tmp_path):
    """Wall-clock check of the tradeoff's expensive end (100 vs 100k)."""
    records = bench_week.records

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def timed(cache, tag):
        t0 = time.perf_counter()
        with CachedLogWriter(
            tmp_path / f"{tag}.evl", cache_records=cache
        ) as w:
            w.log_batch(records)
        return time.perf_counter() - t0

    t_small = min(timed(100, f"s{i}") for i in range(3))
    t_big = min(timed(100_000, f"b{i}") for i in range(3))
    # small cache does ~1000x the write calls; it must not be faster
    assert t_small >= t_big * 0.8
