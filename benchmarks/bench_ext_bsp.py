"""EXT-BSP — communication anatomy of the MPI-style synthesis backend.

The paper reports only wall-clock for its Rmpi runs ("approximately 30
minutes" per batch).  The BSP backend here meters every collective, so we
can report what those minutes are made of: scatter volume (record groups
to ranks), the nnz allgather, the balancing exchange (matrices physically
moved between ranks — the cost of Section IV.A.3's "crucial" step), and
the final adjacency reduction.
"""

from __future__ import annotations

import repro
from repro._util import human_bytes
from repro.core import synthesize_network, synthesize_network_bsp

from conftest import write_report


def test_ext_bsp_comm_anatomy(benchmark, bench_pop, bench_week):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    serial, _ = synthesize_network(
        bench_week.records, bench_pop.n_persons, 0, repro.HOURS_PER_WEEK
    )
    rows = []
    for n_ranks in (2, 4, 8):
        result = synthesize_network_bsp(
            bench_week.records,
            bench_pop.n_persons,
            0,
            repro.HOURS_PER_WEEK,
            n_ranks,
        )
        assert (result.network.adjacency != serial.adjacency).nnz == 0
        kinds = result.traffic.by_kind
        rows.append(
            f"  ranks={n_ranks}: scatter+exchange="
            f"{human_bytes(kinds.get('alltoall', 0)):>10}  "
            f"nnz-allgather={human_bytes(kinds.get('allgather', 0)):>10}  "
            f"reduce={human_bytes(kinds.get('gather', 0)):>10}  "
            f"matrices moved={result.matrices_moved:>5} "
            f"of {result.n_places}"
        )
    lines = [
        "EXT-BSP: communication anatomy of MPI-style synthesis",
        *rows,
        "  output bit-identical to the serial pipeline at every rank count;",
        "  the balancing exchange is real data motion, not just bookkeeping.",
    ]
    write_report("ext_bsp", "\n".join(lines))


def test_ext_bsp_wall_time(benchmark, bench_pop, bench_week):
    """End-to-end BSP synthesis on 4 simulated ranks."""
    result = benchmark.pedantic(
        synthesize_network_bsp,
        args=(
            bench_week.records,
            bench_pop.n_persons,
            0,
            repro.HOURS_PER_WEEK,
            4,
        ),
        rounds=2,
        iterations=1,
    )
    assert result.network.n_edges > 0
